#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tseries/io.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace kshape::tseries {
namespace {

TEST(DatasetTest, AddAndAccess) {
  Dataset d("toy");
  d.Add({1.0, 2.0, 3.0}, 0);
  d.Add({4.0, 5.0, 6.0}, 1);
  EXPECT_EQ(d.name(), "toy");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.length(), 3u);
  EXPECT_EQ(d.label(1), 1);
  EXPECT_DOUBLE_EQ(d.series(0)[2], 3.0);
  EXPECT_EQ(d.NumClasses(), 2);
}

TEST(DatasetTest, DistinctLabelsAreSorted) {
  Dataset d;
  d.Add({1.0}, 5);
  d.Add({2.0}, -1);
  d.Add({3.0}, 5);
  d.Add({4.0}, 2);
  const std::vector<int> labels = d.DistinctLabels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], -1);
  EXPECT_EQ(labels[1], 2);
  EXPECT_EQ(labels[2], 5);
}

TEST(DatasetTest, SubsetSelectsRows) {
  Dataset d("full");
  for (int i = 0; i < 5; ++i) d.Add({double(i), double(i)}, i % 2);
  const Dataset sub = d.Subset({0, 3, 4}, "sub");
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.series(1)[0], 3.0);
  EXPECT_EQ(sub.label(1), 1);
}

TEST(DatasetTest, AppendFusesDatasets) {
  Dataset a("a");
  a.Add({1.0, 2.0}, 0);
  Dataset b("b");
  b.Add({3.0, 4.0}, 1);
  a.Append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.label(1), 1);
}

TEST(SplitDatasetTest, FusedConcatenatesTrainAndTest) {
  SplitDataset split;
  split.train.set_name("x");
  split.train.Add({1.0}, 0);
  split.test.Add({2.0}, 1);
  const Dataset fused = split.Fused();
  EXPECT_EQ(fused.size(), 2u);
  EXPECT_EQ(fused.name(), "x");
}

TEST(NormalizationTest, MeanAndStdDev) {
  const Series x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(x), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(x), 2.0);  // Population std.
}

TEST(NormalizationTest, ZNormalizeGivesZeroMeanUnitVariance) {
  common::Rng rng(1);
  Series x(100);
  for (double& v : x) v = rng.Uniform(-5.0, 20.0);
  ZNormalizeInPlace(&x);
  EXPECT_NEAR(Mean(x), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(x), 1.0, 1e-12);
}

TEST(NormalizationTest, ZNormalizeConstantSeriesIsZero) {
  Series x(10, 3.5);
  ZNormalizeInPlace(&x);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NormalizationTest, ZNormalizeIsScaleAndTranslationInvariant) {
  common::Rng rng(2);
  Series x(50);
  for (double& v : x) v = rng.Gaussian();
  Series y(50);
  for (std::size_t i = 0; i < 50; ++i) y[i] = 3.0 * x[i] - 7.0;
  const Series zx = ZNormalized(x);
  const Series zy = ZNormalized(y);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(zx[i], zy[i], 1e-10);
  }
}

TEST(NormalizationTest, MinMaxMapsToUnitInterval) {
  Series x = {-2.0, 0.0, 6.0};
  MinMaxNormalizeInPlace(&x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.25);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(NormalizationTest, MinMaxConstantSeriesIsZero) {
  Series x(5, 2.0);
  MinMaxNormalizeInPlace(&x);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NormalizationTest, OptimalScalingRecoversTrueCoefficient) {
  common::Rng rng(3);
  Series y(64);
  for (double& v : y) v = rng.Gaussian();
  Series x(64);
  for (std::size_t i = 0; i < 64; ++i) x[i] = 2.5 * y[i];
  EXPECT_NEAR(OptimalScalingCoefficient(x, y), 2.5, 1e-12);
  const Series scaled = OptimallyScaled(x, y);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(scaled[i], x[i], 1e-10);
  }
}

TEST(NormalizationTest, OptimalScalingOfZeroDenominatorIsZero) {
  const Series x = {1.0, 2.0};
  const Series zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(OptimalScalingCoefficient(x, zero), 0.0);
}

TEST(NormalizationTest, ShiftWithZeroFillDelaysAndAdvances) {
  const Series x = {1.0, 2.0, 3.0, 4.0};
  const Series delayed = ShiftWithZeroFill(x, 2);
  EXPECT_DOUBLE_EQ(delayed[0], 0.0);
  EXPECT_DOUBLE_EQ(delayed[1], 0.0);
  EXPECT_DOUBLE_EQ(delayed[2], 1.0);
  EXPECT_DOUBLE_EQ(delayed[3], 2.0);
  const Series advanced = ShiftWithZeroFill(x, -1);
  EXPECT_DOUBLE_EQ(advanced[0], 2.0);
  EXPECT_DOUBLE_EQ(advanced[2], 4.0);
  EXPECT_DOUBLE_EQ(advanced[3], 0.0);
  const Series same = ShiftWithZeroFill(x, 0);
  EXPECT_DOUBLE_EQ(same[0], 1.0);
  EXPECT_DOUBLE_EQ(same[3], 4.0);
}

TEST(NormalizationTest, RandomlyRescaleChangesAmplitudeOnly) {
  common::Rng rng(4);
  Dataset d;
  d.Add({1.0, 2.0, 3.0}, 0);
  RandomlyRescaleDataset(&d, &rng, 2.0, 2.0);  // Deterministic factor 2.
  EXPECT_DOUBLE_EQ(d.series(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(d.series(0)[2], 6.0);
}

TEST(IoTest, ParseUcrTextCommaSeparated) {
  const auto result = ParseUcrText("1,0.5,1.5,2.5\n2,3.0,4.0,5.0\n", "t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.length(), 3u);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_EQ(d.label(1), 2);
  EXPECT_DOUBLE_EQ(d.series(1)[2], 5.0);
}

TEST(IoTest, ParseUcrTextWhitespaceSeparated) {
  const auto result = ParseUcrText("0 1.0 2.0\n1\t3.0\t4.0\n", "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(IoTest, ParseRejectsRaggedRows) {
  const auto result = ParseUcrText("1,1.0,2.0\n2,3.0\n", "t");
  EXPECT_FALSE(result.ok());
}

TEST(IoTest, ParseRejectsGarbageValues) {
  const auto result = ParseUcrText("1,abc,2.0\n", "t");
  EXPECT_FALSE(result.ok());
}

TEST(IoTest, ParseRejectsEmptyInput) {
  const auto result = ParseUcrText("\n\n", "t");
  EXPECT_FALSE(result.ok());
}

TEST(IoTest, WriteThenReadRoundTrips) {
  Dataset d("roundtrip");
  d.Add({1.25, -2.5, 3.75}, 1);
  d.Add({0.0, 0.125, -0.25}, 2);
  const std::string path = ::testing::TempDir() + "/kshape_io_test.csv";
  ASSERT_TRUE(WriteUcrFile(d, path).ok());
  const auto result = ReadUcrFile(path, "roundtrip");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& back = result.value();
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.label(i), d.label(i));
    for (std::size_t t = 0; t < d.length(); ++t) {
      EXPECT_DOUBLE_EQ(back.series(i)[t], d.series(i)[t]);
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileReturnsIoError) {
  const auto result = ReadUcrFile("/nonexistent/definitely/missing.csv", "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace kshape::tseries
