// Contract tests for the out-of-core sharded series pool
// (store::ShardedSeriesStore + ShardView).
//
// Pinned here:
//  - the Create/Append/Seal/Open life cycle round-trips every row bit for
//    bit through the on-disk shard files, partial last shard included;
//  - the geometry helpers (num_shards, ShardRowCount, ShardBegin,
//    ShardOfRow) agree with each other and with the row layout;
//  - Acquire respects the residency budget with least-recently-used
//    eviction, refreshes recency on a hit, and keeps the loaded/evicted
//    telemetry counters truthful;
//  - eviction (LRU or EvictAll) invalidates outstanding ShardViews loudly:
//    batch() on a stale view aborts instead of reading freed memory, and a
//    reload mints a new generation so pre-eviction views stay dead;
//  - corrupt or missing on-disk state is a Status at the Open/Validate
//    boundary (NotFound / InvalidArgument), never an abort;
//  - misuse is a loud programmer error: the length lock spans shard
//    boundaries, empty rows / zero-row geometry / append-after-seal /
//    acquire-before-seal all abort.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "store/sharded_store.h"
#include "tseries/time_series.h"

namespace kshape {
namespace {

namespace fs = std::filesystem;
using common::StatusCode;
using store::ShardedSeriesStore;
using store::ShardedStoreOptions;
using store::ShardView;
using tseries::Series;

// A fresh directory per test so runs never see each other's files.
std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/kshape_store_" + tag;
  fs::remove_all(dir);
  return dir;
}

// Row values encode (row, column) so a round-trip mismatch identifies the
// exact sample that went wrong.
double Cell(std::size_t row, std::size_t col) {
  return static_cast<double>(row) * 1000.0 + static_cast<double>(col) + 0.25;
}

Series MakeRow(std::size_t row, std::size_t m) {
  Series s(m);
  for (std::size_t c = 0; c < m; ++c) s[c] = Cell(row, c);
  return s;
}

ShardedSeriesStore BuildStore(const std::string& dir, std::size_t n,
                              std::size_t m, const ShardedStoreOptions& opt) {
  common::StatusOr<ShardedSeriesStore> created =
      ShardedSeriesStore::Create(dir, opt);
  EXPECT_TRUE(created.ok()) << created.status().message();
  ShardedSeriesStore store = std::move(created).value();
  for (std::size_t i = 0; i < n; ++i) store.Append(MakeRow(i, m));
  const common::Status sealed = store.Seal();
  EXPECT_TRUE(sealed.ok()) << sealed.message();
  return store;
}

void ExpectAllRowsRoundTrip(ShardedSeriesStore* store, std::size_t n,
                            std::size_t m) {
  ASSERT_EQ(store->size(), n);
  ASSERT_EQ(store->length(), m);
  for (std::size_t s = 0; s < store->num_shards(); ++s) {
    const ShardView view = store->Acquire(s);
    EXPECT_EQ(view.shard(), s);
    EXPECT_EQ(view.rows(), store->ShardRowCount(s));
    EXPECT_EQ(view.global_begin(), store->ShardBegin(s));
    const tseries::SeriesBatch batch = view.batch();
    ASSERT_EQ(batch.size(), view.rows());
    for (std::size_t r = 0; r < view.rows(); ++r) {
      const std::size_t i = view.global_begin() + r;
      for (std::size_t c = 0; c < m; ++c) {
        ASSERT_EQ(batch[r][c], Cell(i, c)) << "row " << i << " col " << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Round trip and geometry.
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, RoundTripsRowsThroughDiskWithPartialLastShard) {
  const std::string dir = FreshDir("roundtrip");
  ShardedStoreOptions opt;
  opt.shard_rows = 4;
  opt.max_resident_shards = 2;
  // 10 rows at 4 per shard: shards of 4, 4, 2.
  ShardedSeriesStore store = BuildStore(dir, 10, 8, opt);

  EXPECT_TRUE(store.sealed());
  EXPECT_EQ(store.num_shards(), 3u);
  EXPECT_EQ(store.shard_rows(), 4u);
  EXPECT_EQ(store.ShardRowCount(0), 4u);
  EXPECT_EQ(store.ShardRowCount(1), 4u);
  EXPECT_EQ(store.ShardRowCount(2), 2u);
  EXPECT_EQ(store.ShardBegin(0), 0u);
  EXPECT_EQ(store.ShardBegin(1), 4u);
  EXPECT_EQ(store.ShardBegin(2), 8u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store.ShardOfRow(i), i / 4);
  }
  ExpectAllRowsRoundTrip(&store, 10, 8);
  EXPECT_TRUE(store.Validate().ok());
}

TEST(ShardedStoreTest, ExactMultipleOfShardRowsHasNoPartialShard) {
  const std::string dir = FreshDir("exact_multiple");
  ShardedStoreOptions opt;
  opt.shard_rows = 3;
  opt.max_resident_shards = 4;
  ShardedSeriesStore store = BuildStore(dir, 9, 5, opt);
  EXPECT_EQ(store.num_shards(), 3u);
  EXPECT_EQ(store.ShardRowCount(2), 3u);
  ExpectAllRowsRoundTrip(&store, 9, 5);
}

TEST(ShardedStoreTest, SingleShardStore) {
  const std::string dir = FreshDir("single_shard");
  ShardedStoreOptions opt;
  opt.shard_rows = 64;
  opt.max_resident_shards = 1;
  ShardedSeriesStore store = BuildStore(dir, 5, 7, opt);
  EXPECT_EQ(store.num_shards(), 1u);
  EXPECT_EQ(store.ShardRowCount(0), 5u);
  ExpectAllRowsRoundTrip(&store, 5, 7);
}

TEST(ShardedStoreTest, OpenSeesTheSameRowsAsTheCreatingStore) {
  const std::string dir = FreshDir("open");
  ShardedStoreOptions opt;
  opt.shard_rows = 4;
  opt.max_resident_shards = 2;
  { BuildStore(dir, 11, 6, opt); }  // Create, seal, drop the handle.

  common::StatusOr<ShardedSeriesStore> opened =
      ShardedSeriesStore::Open(dir, /*max_resident_shards=*/2);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  ShardedSeriesStore store = std::move(opened).value();
  EXPECT_TRUE(store.sealed());
  EXPECT_EQ(store.shard_rows(), 4u);
  EXPECT_EQ(store.max_resident_shards(), 2u);
  EXPECT_EQ(store.num_shards(), 3u);
  ExpectAllRowsRoundTrip(&store, 11, 6);
}

TEST(ShardedStoreTest, SealIsIdempotent) {
  const std::string dir = FreshDir("seal_twice");
  ShardedStoreOptions opt;
  opt.shard_rows = 4;
  ShardedSeriesStore store = BuildStore(dir, 6, 3, opt);
  EXPECT_TRUE(store.Seal().ok());  // Second seal is a no-op success.
  ExpectAllRowsRoundTrip(&store, 6, 3);
}

// ---------------------------------------------------------------------------
// Residency: LRU eviction, recency, telemetry.
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, AcquireEvictsLeastRecentlyUsedAtBudget) {
  const std::string dir = FreshDir("lru");
  ShardedStoreOptions opt;
  opt.shard_rows = 2;
  opt.max_resident_shards = 2;
  ShardedSeriesStore store = BuildStore(dir, 8, 4, opt);  // 4 shards.

  store.Acquire(0);
  store.Acquire(1);
  EXPECT_EQ(store.resident_count(), 2u);
  EXPECT_EQ(store.shards_loaded(), 2);
  EXPECT_EQ(store.shard_evictions(), 0);

  // Touch 0 so 1 becomes the LRU, then force an eviction.
  store.Acquire(0);
  EXPECT_EQ(store.shards_loaded(), 2);  // A hit loads nothing.
  store.Acquire(2);
  EXPECT_EQ(store.resident_count(), 2u);
  EXPECT_TRUE(store.ShardResident(0));
  EXPECT_FALSE(store.ShardResident(1));
  EXPECT_TRUE(store.ShardResident(2));
  EXPECT_EQ(store.shards_loaded(), 3);
  EXPECT_EQ(store.shard_evictions(), 1);

  // Next victim is 0 (2 is more recent).
  store.Acquire(3);
  EXPECT_FALSE(store.ShardResident(0));
  EXPECT_TRUE(store.ShardResident(2));
  EXPECT_TRUE(store.ShardResident(3));
  EXPECT_EQ(store.shards_loaded(), 4);
  EXPECT_EQ(store.shard_evictions(), 2);
}

TEST(ShardedStoreTest, ResidencyNeverExceedsBudgetUnderChurn) {
  const std::string dir = FreshDir("churn");
  ShardedStoreOptions opt;
  opt.shard_rows = 2;
  opt.max_resident_shards = 2;
  ShardedSeriesStore store = BuildStore(dir, 12, 4, opt);  // 6 shards.
  for (int round = 0; round < 3; ++round) {
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
      const ShardView view = store.Acquire(s);
      EXPECT_LE(store.resident_count(), store.max_resident_shards());
      // The just-acquired shard is always readable.
      EXPECT_EQ(view.batch()[0][0], Cell(view.global_begin(), 0));
    }
  }
  // Sequential sweeps over 6 shards with budget 2 miss on every acquire
  // after the first two.
  EXPECT_EQ(store.shards_loaded(), 18);
  EXPECT_EQ(store.shard_evictions(), 16);
}

TEST(ShardedStoreTest, EvictAllFreesEverythingAndCountsEvictions) {
  const std::string dir = FreshDir("evict_all");
  ShardedStoreOptions opt;
  opt.shard_rows = 3;
  opt.max_resident_shards = 4;
  ShardedSeriesStore store = BuildStore(dir, 9, 4, opt);
  store.Acquire(0);
  store.Acquire(1);
  store.Acquire(2);
  EXPECT_EQ(store.resident_count(), 3u);
  store.EvictAll();
  EXPECT_EQ(store.resident_count(), 0u);
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    EXPECT_FALSE(store.ShardResident(s));
  }
  EXPECT_EQ(store.shard_evictions(), 3);
  store.EvictAll();  // Idempotent on an empty residency set.
  EXPECT_EQ(store.shard_evictions(), 3);
  // The store is still fully usable afterwards.
  ExpectAllRowsRoundTrip(&store, 9, 4);
}

TEST(ShardedStoreTest, GenerationDistinguishesReloadsFromHits) {
  const std::string dir = FreshDir("generation");
  ShardedStoreOptions opt;
  opt.shard_rows = 4;
  opt.max_resident_shards = 2;
  ShardedSeriesStore store = BuildStore(dir, 8, 4, opt);

  const ShardView first = store.Acquire(0);
  const ShardView hit = store.Acquire(0);
  EXPECT_EQ(hit.generation(), first.generation());  // Same loaded bytes.
  store.EvictAll();
  const ShardView reloaded = store.Acquire(0);
  EXPECT_NE(reloaded.generation(), first.generation());
  EXPECT_EQ(reloaded.batch()[0][0], Cell(0, 0));
}

// ---------------------------------------------------------------------------
// Status boundary: corrupt and missing on-disk state.
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, OpenMissingDirectoryIsNotFound) {
  common::StatusOr<ShardedSeriesStore> opened =
      ShardedSeriesStore::Open(FreshDir("nonexistent"), 2);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST(ShardedStoreTest, OpenRejectsCorruptMagic) {
  const std::string dir = FreshDir("bad_magic");
  { BuildStore(dir, 6, 3, ShardedStoreOptions{.shard_rows = 4}); }
  {
    std::ofstream meta(dir + "/meta.txt", std::ios::trunc);
    meta << "not a kshape store\nlength 3\nshard_rows 4\nrows 6\n";
  }
  common::StatusOr<ShardedSeriesStore> opened =
      ShardedSeriesStore::Open(dir, 2);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos);
}

TEST(ShardedStoreTest, OpenRejectsMalformedMetadata) {
  const std::string dir = FreshDir("bad_meta");
  { BuildStore(dir, 6, 3, ShardedStoreOptions{.shard_rows = 4}); }
  {
    std::ofstream meta(dir + "/meta.txt", std::ios::trunc);
    meta << "kshape-sharded-store v1\nlength 0\nshard_rows 4\nrows 6\n";
  }
  common::StatusOr<ShardedSeriesStore> opened =
      ShardedSeriesStore::Open(dir, 2);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedStoreTest, OpenRejectsTruncatedShardFile) {
  const std::string dir = FreshDir("truncated");
  { BuildStore(dir, 6, 3, ShardedStoreOptions{.shard_rows = 4}); }
  fs::resize_file(dir + "/shard_00001.bin", 8);  // 2 rows * 3 doubles - rest.
  common::StatusOr<ShardedSeriesStore> opened =
      ShardedSeriesStore::Open(dir, 2);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("truncated"), std::string::npos);
}

TEST(ShardedStoreTest, OpenRejectsMissingShardFile) {
  const std::string dir = FreshDir("missing_shard");
  { BuildStore(dir, 6, 3, ShardedStoreOptions{.shard_rows = 4}); }
  fs::remove(dir + "/shard_00000.bin");
  common::StatusOr<ShardedSeriesStore> opened =
      ShardedSeriesStore::Open(dir, 2);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST(ShardedStoreTest, ValidateCatchesRaggedStoreBehindSealedHandle) {
  const std::string dir = FreshDir("validate_ragged");
  ShardedSeriesStore store =
      BuildStore(dir, 6, 3, ShardedStoreOptions{.shard_rows = 4});
  EXPECT_TRUE(store.Validate().ok());
  // Truncate a shard file behind the handle's back — Validate is the guard
  // TryCluster runs so this becomes a Status, not an abort mid-scan.
  fs::resize_file(dir + "/shard_00000.bin", 40);
  const common::Status ragged = store.Validate();
  ASSERT_FALSE(ragged.ok());
  EXPECT_EQ(ragged.code(), StatusCode::kInvalidArgument);
}

TEST(ShardedStoreTest, SealingAnEmptyStoreIsAnError) {
  const std::string dir = FreshDir("seal_empty");
  common::StatusOr<ShardedSeriesStore> created =
      ShardedSeriesStore::Create(dir, ShardedStoreOptions{});
  ASSERT_TRUE(created.ok());
  ShardedSeriesStore store = std::move(created).value();
  const common::Status sealed = store.Seal();
  ASSERT_FALSE(sealed.ok());
  EXPECT_EQ(sealed.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedStoreTest, SealingADefaultStoreIsAnError) {
  ShardedSeriesStore store;
  const common::Status sealed = store.Seal();
  ASSERT_FALSE(sealed.ok());
  EXPECT_EQ(sealed.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Misuse aborts (death tests).
// ---------------------------------------------------------------------------

TEST(ShardedStoreDeathTest, LengthLockSpansShardBoundaries) {
  const std::string dir = FreshDir("length_lock");
  common::StatusOr<ShardedSeriesStore> created = ShardedSeriesStore::Create(
      dir, ShardedStoreOptions{.shard_rows = 2});
  ASSERT_TRUE(created.ok());
  ShardedSeriesStore store = std::move(created).value();
  for (std::size_t i = 0; i < 5; ++i) store.Append(MakeRow(i, 4));
  // Two shards already spilled to disk; the lock still holds.
  EXPECT_DEATH(store.Append(MakeRow(5, 6)), "locks the length");
}

TEST(ShardedStoreDeathTest, AppendRejectsEmptyRow) {
  const std::string dir = FreshDir("empty_row");
  common::StatusOr<ShardedSeriesStore> created =
      ShardedSeriesStore::Create(dir, ShardedStoreOptions{});
  ASSERT_TRUE(created.ok());
  ShardedSeriesStore store = std::move(created).value();
  EXPECT_DEATH(store.Append(Series{}), "empty series");
}

TEST(ShardedStoreDeathTest, AppendAfterSealAborts) {
  const std::string dir = FreshDir("append_sealed");
  ShardedSeriesStore store =
      BuildStore(dir, 4, 3, ShardedStoreOptions{.shard_rows = 2});
  EXPECT_DEATH(store.Append(MakeRow(4, 3)), "sealed");
}

TEST(ShardedStoreDeathTest, AcquireBeforeSealAborts) {
  const std::string dir = FreshDir("acquire_unsealed");
  common::StatusOr<ShardedSeriesStore> created =
      ShardedSeriesStore::Create(dir, ShardedStoreOptions{});
  ASSERT_TRUE(created.ok());
  ShardedSeriesStore store = std::move(created).value();
  store.Append(MakeRow(0, 3));
  EXPECT_DEATH(store.Acquire(0), "unsealed");
}

TEST(ShardedStoreDeathTest, ZeroRowShardGeometryAborts) {
  EXPECT_DEATH(
      ShardedSeriesStore::Create(FreshDir("zero_rows"),
                                 ShardedStoreOptions{.shard_rows = 0}),
      "shard_rows");
}

TEST(ShardedStoreDeathTest, ZeroResidencyBudgetAborts) {
  EXPECT_DEATH(ShardedSeriesStore::Create(
                   FreshDir("zero_budget"),
                   ShardedStoreOptions{.shard_rows = 4,
                                       .max_resident_shards = 0}),
               "max_resident_shards");
}

TEST(ShardedStoreDeathTest, ViewUseAfterEvictionAborts) {
  const std::string dir = FreshDir("stale_view");
  ShardedStoreOptions opt;
  opt.shard_rows = 2;
  opt.max_resident_shards = 1;
  ShardedSeriesStore store = BuildStore(dir, 6, 4, opt);
  const ShardView view = store.Acquire(0);
  EXPECT_EQ(view.batch()[0][0], Cell(0, 0));  // Valid while resident.
  store.Acquire(1);                            // Budget 1: evicts shard 0.
  EXPECT_DEATH(view.batch(), "after its shard was evicted");
}

TEST(ShardedStoreDeathTest, ViewFromBeforeReloadStaysDead) {
  const std::string dir = FreshDir("reload_view");
  ShardedStoreOptions opt;
  opt.shard_rows = 2;
  opt.max_resident_shards = 1;
  ShardedSeriesStore store = BuildStore(dir, 6, 4, opt);
  const ShardView view = store.Acquire(0);
  store.Acquire(1);  // Evicts 0.
  store.Acquire(0);  // Reloads 0 under a new generation.
  EXPECT_DEATH(view.batch(), "after its shard was evicted");
}

TEST(ShardedStoreDeathTest, DefaultViewAborts) {
  const ShardView view;
  EXPECT_DEATH(view.batch(), "default ShardView");
}

TEST(ShardedStoreDeathTest, AppendOnDefaultStoreAborts) {
  ShardedSeriesStore store;
  EXPECT_DEATH(store.Append(MakeRow(0, 3)), "default-constructed");
}

}  // namespace
}  // namespace kshape
