// Tests for the fit/predict split (src/model/fitted_model.h): the FittedModel
// artifact, its versioned *.kmodel binary format, Predict / TryPredict /
// OnlineScorer scoring, and the serialization contract of ISSUE 9 — a
// saved->loaded model predicts bit-identically to the in-memory model across
// {1,2,8} threads x scalar/AVX2 x half/full spectrum x prune on/off.
//
// The corruption matrix mutates real Save() output with byte surgery and
// asserts Load() rejects each damaged file with a Status (never an abort):
// bad magic, version skew, header geometry, out-of-range dimensions,
// truncated and ragged centroid blocks, non-finite centroids.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "classify/nearest_neighbor.h"
#include "cluster/algorithm.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "core/kshape.h"
#include "core/sbd_engine.h"
#include "data/generators.h"
#include "fft/rfft.h"
#include "model/assigner.h"
#include "model/fitted_model.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace kshape {
namespace {

// Restores thread count, SIMD backend, the runtime gates, and the model
// format version stamp after each test, so config-flipping tests cannot leak
// into their neighbours.
class ConfigGuard {
 public:
  ConfigGuard() {
    core::SetPruningEnabledForTesting(true);
    fft::SetHalfSpectrumEnabledForTesting(true);
  }
  ~ConfigGuard() {
    common::SetThreadCount(saved_threads_);
    simd::SetBackendForTesting(saved_backend_);
    core::SetPruningEnabledForTesting(true);
    fft::SetHalfSpectrumEnabledForTesting(true);
    model::ResetModelFormatVersionStampForTesting();
  }

 private:
  int saved_threads_ = common::ThreadCount();
  simd::Backend saved_backend_ = simd::ActiveBackend();
};

tseries::Dataset MakeCbfDataset(const std::string& name, int per_class,
                                std::size_t m, std::uint64_t seed) {
  common::Rng rng(seed);
  tseries::Dataset data = data::MakeLabeledDataset(
      name, /*num_classes=*/3, per_class,
      [m](int klass, common::Rng* r) { return data::MakeCbf(klass, m, r); },
      &rng);
  tseries::ZNormalizeDataset(&data);
  return data;
}

constexpr std::size_t kLength = 64;

// One fit shared by every test: a converged k-Shape run over CBF, executed
// under the default configuration (half spectrum + pruning on) regardless of
// what the first caller's test has toggled.
struct Fixture {
  tseries::Dataset train = MakeCbfDataset("cbf-train", 20, kLength, 17);
  tseries::Dataset score = MakeCbfDataset("cbf-score", 15, kLength, 91);
  cluster::ClusteringResult result;

  Fixture() {
    core::SetPruningEnabledForTesting(true);
    fft::SetHalfSpectrumEnabledForTesting(true);
    const core::KShape kshape;
    common::Rng rng(7);
    result = kshape.Cluster(train.batch(), 3, &rng);
  }
};

const Fixture& SharedFit() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

template <typename T>
void PatchBytes(std::string* bytes, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

// Writes the mutated bytes, expects Load to reject them as InvalidArgument,
// and checks the message names the failure.
void ExpectCorrupt(const std::string& bytes, const std::string& needle) {
  const std::string path = TempPath("fitted_model_test_corrupt.kmodel");
  WriteFileBytes(path, bytes);
  common::StatusOr<model::FittedModel> loaded = model::FittedModel::Load(path);
  ASSERT_FALSE(loaded.ok()) << "expected rejection for: " << needle;
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
      << loaded.status().message();
  std::filesystem::remove(path);
}

// Valid Save() output of the shared fit, produced once per call site.
std::string BaselineModelBytes() {
  const std::string path = TempPath("fitted_model_test_baseline.kmodel");
  EXPECT_TRUE(SharedFit().result.model.Save(path).ok());
  const std::string bytes = ReadFileBytes(path);
  std::filesystem::remove(path);
  return bytes;
}

TEST(FittedModelTest, AttachFreezesTheFitState) {
  ConfigGuard guard;
  const cluster::ClusteringResult& result = SharedFit().result;
  const model::FittedModel& m = result.model;
  ASSERT_FALSE(m.empty());
  EXPECT_EQ(m.k(), result.centroids.size());
  EXPECT_EQ(m.m(), kLength);
  EXPECT_EQ(m.method(), "k-Shape");
  EXPECT_TRUE(m.fingerprint().half_spectrum);
  EXPECT_TRUE(m.fingerprint().pruning);
  EXPECT_EQ(m.telemetry().iterations, result.iterations);
  EXPECT_EQ(m.telemetry().converged, result.converged);
  EXPECT_EQ(m.telemetry().distances_computed, result.distances_computed);
  EXPECT_EQ(m.telemetry().distances_pruned_bounds,
            result.distances_pruned_bounds);
  EXPECT_EQ(m.telemetry().distances_abandoned_partial,
            result.distances_abandoned_partial);
  for (std::size_t j = 0; j < m.k(); ++j) {
    ASSERT_EQ(m.centroid(j).size(), result.centroids[j].size());
    EXPECT_EQ(std::memcmp(m.centroid(j).data(), result.centroids[j].data(),
                          kLength * sizeof(double)),
              0)
        << "centroid " << j << " not frozen bitwise";
  }
}

TEST(FittedModelTest, AttachWithoutCentroidsLeavesModelEmpty) {
  ConfigGuard guard;
  cluster::ClusteringResult result;
  cluster::AttachFittedModel(&result, "no-centroids");
  EXPECT_TRUE(result.model.empty());
}

TEST(FittedModelTest, SaveLoadRoundTripIsBitwise) {
  ConfigGuard guard;
  const model::FittedModel& fitted = SharedFit().result.model;
  const std::string path = TempPath("fitted_model_test_roundtrip.kmodel");
  ASSERT_TRUE(fitted.Save(path).ok());

  common::StatusOr<model::FittedModel> loaded = model::FittedModel::Load(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const model::FittedModel& back = loaded.value();
  EXPECT_EQ(back.k(), fitted.k());
  EXPECT_EQ(back.m(), fitted.m());
  EXPECT_EQ(back.method(), fitted.method());
  EXPECT_EQ(back.fingerprint().half_spectrum, fitted.fingerprint().half_spectrum);
  EXPECT_EQ(back.fingerprint().pruning, fitted.fingerprint().pruning);
  EXPECT_EQ(back.fingerprint().length_policy, fitted.fingerprint().length_policy);
  EXPECT_EQ(back.fingerprint().missing_policy,
            fitted.fingerprint().missing_policy);
  EXPECT_EQ(back.telemetry().iterations, fitted.telemetry().iterations);
  EXPECT_EQ(back.telemetry().converged, fitted.telemetry().converged);
  EXPECT_EQ(back.telemetry().empty_cluster_reseeds,
            fitted.telemetry().empty_cluster_reseeds);
  EXPECT_EQ(back.telemetry().degenerate_centroids,
            fitted.telemetry().degenerate_centroids);
  EXPECT_EQ(back.telemetry().distances_computed,
            fitted.telemetry().distances_computed);
  EXPECT_EQ(back.telemetry().distances_pruned_bounds,
            fitted.telemetry().distances_pruned_bounds);
  EXPECT_EQ(back.telemetry().distances_abandoned_partial,
            fitted.telemetry().distances_abandoned_partial);
  EXPECT_EQ(back.telemetry().sampled_series, fitted.telemetry().sampled_series);
  for (std::size_t j = 0; j < fitted.k(); ++j) {
    EXPECT_EQ(std::memcmp(back.centroid(j).data(), fitted.centroid(j).data(),
                          fitted.m() * sizeof(double)),
              0)
        << "centroid " << j << " changed across save/load";
  }
}

TEST(FittedModelTest, PredictOnTrainingSetReproducesConvergedAssignments) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();
  ASSERT_TRUE(fit.result.converged)
      << "fixture fit did not converge; pick a friendlier seed";
  const model::PredictResult scored =
      model::Predict(fit.result.model, fit.train.batch());
  EXPECT_EQ(scored.labels, fit.result.assignments);
}

// The acceptance contract of the PR: saved -> loaded -> Predict labels (and
// distances) bit-identical to the in-memory model, across the whole gate
// matrix. Labels must also be invariant across every configuration.
TEST(FittedModelTest, SavedLoadedPredictBitIdenticalAcrossGateMatrix) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();
  const std::string path = TempPath("fitted_model_test_matrix.kmodel");
  ASSERT_TRUE(fit.result.model.Save(path).ok());
  common::StatusOr<model::FittedModel> loaded = model::FittedModel::Load(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  const std::vector<int> reference =
      model::Predict(fit.result.model, fit.score.batch()).labels;

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);
  for (const int threads : {1, 2, 8}) {
    for (const simd::Backend backend : backends) {
      for (const bool half : {true, false}) {
        for (const bool prune : {true, false}) {
          common::SetThreadCount(threads);
          simd::SetBackendForTesting(backend);
          fft::SetHalfSpectrumEnabledForTesting(half);
          core::SetPruningEnabledForTesting(prune);
          const std::string config =
              "threads=" + std::to_string(threads) +
              " backend=" + (backend == simd::Backend::kAvx2 ? "avx2"
                                                             : "scalar") +
              " half=" + (half ? "on" : "off") +
              " prune=" + (prune ? "on" : "off");

          const model::PredictResult in_memory =
              model::Predict(fit.result.model, fit.score.batch());
          const model::PredictResult from_disk =
              model::Predict(loaded.value(), fit.score.batch());
          EXPECT_EQ(in_memory.labels, from_disk.labels) << config;
          EXPECT_EQ(in_memory.distances, from_disk.distances) << config;
          EXPECT_EQ(in_memory.labels, reference) << config;
        }
      }
    }
  }
}

TEST(FittedModelTest, PredictStatsPartitionTheScan) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();
  const model::PredictResult scored =
      model::Predict(fit.result.model, fit.score.batch());
  const std::int64_t total =
      static_cast<std::int64_t>(fit.score.size() * fit.result.model.k());
  // A single frozen-centroid pass has no movement bounds, so every candidate
  // is either fully computed or abandoned from partial spectral sums.
  EXPECT_EQ(scored.stats.pruned_bounds, 0);
  EXPECT_EQ(scored.stats.computed + scored.stats.abandoned_partial, total);
  EXPECT_GT(scored.stats.computed, 0);
}

TEST(FittedModelTest, TryPredictRejectsBadInput) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();

  const model::FittedModel empty_model;
  EXPECT_EQ(model::TryPredict(empty_model, fit.score.batch()).status().code(),
            common::StatusCode::kFailedPrecondition);

  tseries::SeriesStore empty_store;
  EXPECT_EQ(model::TryPredict(fit.result.model,
                              tseries::SeriesBatch(empty_store))
                .status()
                .code(),
            common::StatusCode::kInvalidArgument);

  const tseries::Dataset short_data =
      MakeCbfDataset("cbf-short", 2, kLength / 2, 5);
  EXPECT_EQ(
      model::TryPredict(fit.result.model, short_data.batch()).status().code(),
      common::StatusCode::kInvalidArgument);

  tseries::SeriesStore bad_store;
  bad_store.Reserve(1, kLength);
  tseries::Series bad_row(kLength, 0.25);
  bad_row[3] = std::numeric_limits<double>::quiet_NaN();
  bad_store.Append(bad_row);
  common::StatusOr<model::PredictResult> bad =
      model::TryPredict(fit.result.model, tseries::SeriesBatch(bad_store));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("non-finite"), std::string::npos);

  common::StatusOr<model::PredictResult> good =
      model::TryPredict(fit.result.model, fit.score.batch());
  EXPECT_TRUE(good.ok());
}

TEST(FittedModelTest, SaveRejectsEmptyModelAndUnwritablePath) {
  ConfigGuard guard;
  const model::FittedModel empty_model;
  EXPECT_EQ(empty_model.Save(TempPath("never_written.kmodel")).code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(SharedFit()
                .result.model.Save("/nonexistent-dir/model.kmodel")
                .code(),
            common::StatusCode::kIoError);
}

TEST(FittedModelTest, LoadMissingFileIsNotFound) {
  ConfigGuard guard;
  common::StatusOr<model::FittedModel> loaded =
      model::FittedModel::Load(TempPath("fitted_model_test_missing.kmodel"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kNotFound);
}

// Byte-surgery corruption matrix against real Save() output. Offsets follow
// the format doc in fitted_model.h.
TEST(FittedModelTest, LoadRejectsCorruptFiles) {
  ConfigGuard guard;
  const std::string base = BaselineModelBytes();
  ASSERT_GT(base.size(), 160u);

  {
    std::string bytes = base;
    bytes[0] = 'X';
    ExpectCorrupt(bytes, "unrecognized magic");
  }
  {
    std::string bytes = base;
    PatchBytes<std::uint32_t>(&bytes, 8, 99);  // version
    ExpectCorrupt(bytes, "unsupported format version 99");
  }
  {
    std::string bytes = base;
    PatchBytes<std::uint32_t>(&bytes, 12, 128);  // header_bytes
    ExpectCorrupt(bytes, "header geometry");
  }
  {
    std::string bytes = base;
    PatchBytes<std::uint64_t>(&bytes, 16, 0);  // k = 0
    ExpectCorrupt(bytes, "k out of range");
  }
  {
    std::string bytes = base;
    PatchBytes<std::uint64_t>(&bytes, 16, (1ull << 20) + 1);  // absurd k
    ExpectCorrupt(bytes, "k out of range");
  }
  {
    std::string bytes = base;
    PatchBytes<std::uint64_t>(&bytes, 24, 0);  // m = 0
    ExpectCorrupt(bytes, "m out of range");
  }
  {
    std::string bytes = base;
    bytes.resize(bytes.size() - sizeof(double));  // truncated centroid block
    ExpectCorrupt(bytes, "truncated or ragged");
  }
  {
    std::string bytes = base + "ragged-tail";  // trailing junk
    ExpectCorrupt(bytes, "truncated or ragged");
  }
  {
    std::string bytes = base;
    bytes.resize(100);  // shorter than the fixed header
    ExpectCorrupt(bytes, "shorter than the header");
  }
  {
    std::string bytes = base;
    PatchBytes<std::uint32_t>(&bytes, 32, 7);  // half_spectrum flag
    ExpectCorrupt(bytes, "boolean field out of range");
  }
  {
    std::string bytes = base;
    PatchBytes<std::uint32_t>(&bytes, 40, 250);  // length_policy
    ExpectCorrupt(bytes, "conditioning policy out of range");
  }
  {
    std::string bytes = base;
    for (std::size_t i = 112; i < 160; ++i) bytes[i] = 'A';  // method field
    ExpectCorrupt(bytes, "not NUL-terminated");
  }
  {
    std::string bytes = base;
    PatchBytes<double>(&bytes, 160,
                       std::numeric_limits<double>::quiet_NaN());
    ExpectCorrupt(bytes, "non-finite");
  }
  {
    std::string bytes = base;
    PatchBytes<double>(&bytes, 160 + sizeof(double),
                       std::numeric_limits<double>::infinity());
    ExpectCorrupt(bytes, "non-finite");
  }
}

// KSHAPE_MODEL_V (via the testing override) stamps a different version into
// Save() output; the reader only accepts the version it was built for.
TEST(FittedModelTest, VersionStampSkewIsRejectedOnLoad) {
  ConfigGuard guard;
  EXPECT_EQ(model::ModelFormatVersionStamp(), model::kModelFormatVersion);

  model::SetModelFormatVersionStampForTesting(7);
  EXPECT_EQ(model::ModelFormatVersionStamp(), 7u);
  const std::string path = TempPath("fitted_model_test_skew.kmodel");
  ASSERT_TRUE(SharedFit().result.model.Save(path).ok());
  common::StatusOr<model::FittedModel> skewed = model::FittedModel::Load(path);
  ASSERT_FALSE(skewed.ok());
  EXPECT_NE(skewed.status().message().find("unsupported format version 7"),
            std::string::npos)
      << skewed.status().message();

  model::ResetModelFormatVersionStampForTesting();
  EXPECT_EQ(model::ModelFormatVersionStamp(), model::kModelFormatVersion);
  ASSERT_TRUE(SharedFit().result.model.Save(path).ok());
  EXPECT_TRUE(model::FittedModel::Load(path).ok());
  std::filesystem::remove(path);
}

TEST(FittedModelTest, CheckFingerprintFlagsGateMismatch) {
  ConfigGuard guard;
  const model::FittedModel& fitted = SharedFit().result.model;
  EXPECT_TRUE(fitted.CheckFingerprint().ok());

  fft::SetHalfSpectrumEnabledForTesting(false);
  common::Status half_skew = fitted.CheckFingerprint();
  EXPECT_EQ(half_skew.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(half_skew.message().find("half_spectrum"), std::string::npos);
  fft::SetHalfSpectrumEnabledForTesting(true);

  core::SetPruningEnabledForTesting(false);
  common::Status prune_skew = fitted.CheckFingerprint();
  EXPECT_EQ(prune_skew.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(prune_skew.message().find("pruning"), std::string::npos);
  core::SetPruningEnabledForTesting(true);

  const model::FittedModel empty_model;
  EXPECT_EQ(empty_model.CheckFingerprint().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(FittedModelTest, LongMethodNamesAreTruncatedToTheFieldWidth) {
  ConfigGuard guard;
  std::vector<tseries::Series> centroids = {tseries::Series(16, 0.5)};
  const std::string long_name(80, 'x');
  const model::FittedModel fitted(centroids, model::ModelFingerprint{},
                                  model::FitTelemetry{}, long_name);
  EXPECT_EQ(fitted.method().size(), 47u);  // kMethodBytes - 1

  const std::string path = TempPath("fitted_model_test_method.kmodel");
  ASSERT_TRUE(fitted.Save(path).ok());
  common::StatusOr<model::FittedModel> loaded = model::FittedModel::Load(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().method(), fitted.method());
}

TEST(FittedModelTest, NearestCentroidClassifyMatchesPredict) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();
  const std::vector<int> classified =
      classify::NearestCentroidClassify(fit.result.model, fit.score.batch());
  const model::PredictResult scored =
      model::Predict(fit.result.model, fit.score.batch());
  EXPECT_EQ(classified, scored.labels);
}

TEST(OnlineScorerTest, IngestMatchesBatchedPredict) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();
  const model::PredictResult batched =
      model::Predict(fit.result.model, fit.score.batch());

  model::OnlineScorer scorer(&fit.result.model);
  const tseries::SeriesBatch batch = fit.score.batch();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const model::OnlineScorer::Ingested got = scorer.Ingest(batch[i]);
    EXPECT_EQ(got.label, batched.labels[i]) << "series " << i;
    EXPECT_EQ(got.distance, batched.distances[i]) << "series " << i;
  }
  EXPECT_EQ(scorer.labels(), batched.labels);
  EXPECT_EQ(scorer.ingested(), batch.size());
  EXPECT_EQ(scorer.store().size(), batch.size());
  EXPECT_EQ(scorer.store().length(), kLength);
  // Same partition invariant as the batched scan: no bounds, so every
  // candidate is computed or abandoned.
  EXPECT_EQ(scorer.stats().pruned_bounds, 0);
  EXPECT_EQ(scorer.stats().computed + scorer.stats().abandoned_partial,
            static_cast<std::int64_t>(batch.size() * fit.result.model.k()));
}

TEST(OnlineScorerTest, DriftCountingAndRefreshThresholds) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();
  const tseries::SeriesBatch batch = fit.score.batch();

  // drift_distance = -1: every SBD (>= 0) counts as drifted.
  model::OnlineScorerOptions options;
  options.drift_distance = -1.0;
  options.refresh_after_drifted = 3;
  model::OnlineScorer scorer(&fit.result.model, options);
  EXPECT_FALSE(scorer.refresh_due());
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(scorer.Ingest(batch[i]).drifted);
  }
  EXPECT_FALSE(scorer.refresh_due());
  scorer.Ingest(batch[2]);
  EXPECT_EQ(scorer.drifted(), 3u);
  EXPECT_TRUE(scorer.refresh_due());

  // A model swap resets the drift window.
  scorer.SwapModel(&fit.result.model);
  EXPECT_EQ(scorer.drifted(), 0u);
  EXPECT_FALSE(scorer.refresh_due());
  // The history (store + labels) survives the swap; only counters reset.
  EXPECT_EQ(scorer.store().size(), 3u);

  model::OnlineScorerOptions by_count;
  by_count.refresh_after_ingested = 2;
  model::OnlineScorer counting(&fit.result.model, by_count);
  counting.Ingest(batch[0]);
  EXPECT_FALSE(counting.refresh_due());
  counting.Ingest(batch[1]);
  EXPECT_TRUE(counting.refresh_due());
}

TEST(OnlineScorerTest, TryIngestRejectsBadSeries) {
  ConfigGuard guard;
  const Fixture& fit = SharedFit();
  model::OnlineScorer scorer(&fit.result.model);

  const tseries::Series short_series(kLength / 2, 0.5);
  EXPECT_EQ(scorer.TryIngest(short_series).status().code(),
            common::StatusCode::kInvalidArgument);

  tseries::Series bad(kLength, 0.5);
  bad[0] = std::numeric_limits<double>::infinity();
  common::StatusOr<model::OnlineScorer::Ingested> rejected =
      scorer.TryIngest(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("non-finite"), std::string::npos);
  EXPECT_EQ(scorer.ingested(), 0u);

  EXPECT_TRUE(scorer.TryIngest(fit.score.batch()[0]).ok());
  EXPECT_EQ(scorer.ingested(), 1u);
}

// Satellite: the early-abandoned NCC peak scan. The abandon is exact — the
// peak (value AND index) must be bit-identical with the gate on or off — and
// its telemetry partitions the lag range into scanned + skipped.
TEST(PeakScanAbandonTest, ExactAcrossTheGateWithTelemetryPartition) {
  ConfigGuard guard;
  tseries::Dataset data = MakeCbfDataset("cbf-peak", 4, kLength, 33);
  const core::SbdEngine engine(data.batch(), core::CrossCorrelationImpl::kFft,
                               fft::HalfSpectrumEnabled(),
                               /*build_bound_planes=*/false);

  // Gate off: the full lag range is scanned.
  core::SetPruningEnabledForTesting(false);
  core::ResetPeakScanStatsForTesting();
  std::vector<double> exact;
  for (std::size_t i = 1; i < data.size(); ++i) {
    exact.push_back(engine.Distance(0, i));
  }
  const core::PeakScanTelemetry off = core::PeakScanStats();
  EXPECT_GT(off.lags_scanned, 0);
  EXPECT_EQ(off.lags_skipped, 0);

  // Gate on: some suffix chunks may be skipped, but scanned + skipped must
  // cover the same total lag range, and every distance is bit-identical.
  core::SetPruningEnabledForTesting(true);
  core::ResetPeakScanStatsForTesting();
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_EQ(engine.Distance(0, i), exact[i - 1]) << "pair (0," << i << ")";
  }
  const core::PeakScanTelemetry on = core::PeakScanStats();
  EXPECT_EQ(on.lags_scanned + on.lags_skipped, off.lags_scanned);
  EXPECT_GE(on.lags_skipped, 0);
  core::ResetPeakScanStatsForTesting();
}

}  // namespace
}  // namespace kshape
