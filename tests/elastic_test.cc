#include "distance/elastic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distance/euclidean.h"

namespace kshape::distance {
namespace {

using tseries::Series;

Series RandomSeries(std::size_t m, common::Rng* rng) {
  Series x(m);
  for (double& v : x) v = rng->Gaussian();
  return x;
}

TEST(ErpTest, EqualSeriesHaveZeroDistance) {
  common::Rng rng(1);
  const Series x = RandomSeries(24, &rng);
  EXPECT_DOUBLE_EQ(ErpDistance(x, x), 0.0);
}

TEST(ErpTest, HandComputedExample) {
  // x = (1, 2), y = (1, 2, 3) with gap 0: align 1-1, 2-2, delete 3 -> cost 3.
  const Series x = {1.0, 2.0};
  const Series y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ErpDistance(x, y, 0.0), 3.0);
}

TEST(ErpTest, ReducesToManhattanDeletionAgainstEmptyAlignment) {
  // Against a single far point, everything else is deleted against the gap.
  const Series x = {5.0};
  const Series y = {5.0, 1.0, -2.0};
  // Match 5-5 (0), delete 1 and -2 against gap 0 -> 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(ErpDistance(x, y, 0.0), 3.0);
}

TEST(ErpTest, SymmetryAndTriangleInequality) {
  common::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Series a = RandomSeries(12, &rng);
    const Series b = RandomSeries(12, &rng);
    const Series c = RandomSeries(12, &rng);
    EXPECT_NEAR(ErpDistance(a, b), ErpDistance(b, a), 1e-12);
    // ERP is a metric (Chen & Ng 2004).
    EXPECT_LE(ErpDistance(a, c),
              ErpDistance(a, b) + ErpDistance(b, c) + 1e-9);
  }
}

TEST(ErpTest, GapValueMatters) {
  const Series x = {0.0, 0.0};
  const Series y = {0.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(ErpDistance(x, y, 0.0), 4.0);  // Deleting 4 costs |4-0|.
  EXPECT_DOUBLE_EQ(ErpDistance(x, y, 4.0), 0.0);  // Deleting 4 is now free.
}

TEST(EdrTest, IdenticalSeriesScoreZero) {
  common::Rng rng(3);
  const Series x = RandomSeries(30, &rng);
  EXPECT_DOUBLE_EQ(EdrDistance(x, x, 0.25), 0.0);
}

TEST(EdrTest, CountsMismatchesBeyondEpsilon) {
  const Series x = {0.0, 0.0, 0.0};
  const Series y = {0.1, 5.0, 0.1};
  // With epsilon 0.25: positions 1 and 3 match, the middle substitutes.
  EXPECT_DOUBLE_EQ(EdrDistance(x, y, 0.25), 1.0);
}

TEST(EdrTest, LengthDifferenceCostsInsertions) {
  const Series x = {0.0};
  const Series y = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(EdrDistance(x, y, 0.25), 2.0);
}

TEST(EdrTest, RobustToASingleOutlier) {
  // EDR's claim to fame: one wild outlier costs exactly 1 regardless of
  // magnitude.
  Series x(20, 0.0);
  Series y = x;
  y[10] = 1e6;
  EXPECT_DOUBLE_EQ(EdrDistance(x, y, 0.25), 1.0);
}

TEST(MsmTest, IdenticalSeriesScoreZero) {
  common::Rng rng(4);
  const Series x = RandomSeries(25, &rng);
  EXPECT_DOUBLE_EQ(MsmDistance(x, x), 0.0);
}

TEST(MsmTest, PureMoveCostsValueDifference) {
  const Series x = {1.0, 2.0, 3.0};
  const Series y = {1.0, 2.5, 3.0};
  EXPECT_DOUBLE_EQ(MsmDistance(x, y, 0.5), 0.5);
}

TEST(MsmTest, SplitPlusMoveHandComputedExample) {
  const Series x = {1.0, 3.0};
  const Series y = {1.0, 2.0, 3.0};
  // Optimal edit: split the 1 (cost c = 0.5) and move the copy to 2
  // (cost 1), then 3 matches 3 — total 1.5 under Stefan et al.'s recurrence.
  EXPECT_DOUBLE_EQ(MsmDistance(x, y, 0.5), 1.5);
  // A cheaper split parameter shifts the total accordingly.
  EXPECT_DOUBLE_EQ(MsmDistance(x, y, 0.1), 1.1);
}

TEST(MsmTest, IsSymmetricAndSatisfiesTriangle) {
  common::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Series a = RandomSeries(10, &rng);
    const Series b = RandomSeries(10, &rng);
    const Series c = RandomSeries(10, &rng);
    EXPECT_NEAR(MsmDistance(a, b), MsmDistance(b, a), 1e-12);
    // MSM is a metric (Stefan et al. 2013).
    EXPECT_LE(MsmDistance(a, c),
              MsmDistance(a, b) + MsmDistance(b, c) + 1e-9);
  }
}

TEST(CidTest, EqualComplexityReducesToEd) {
  common::Rng rng(6);
  const Series x = RandomSeries(32, &rng);
  Series y = x;
  for (double& v : y) v += 0.5;  // Same increments, same complexity.
  EXPECT_NEAR(CidDistance(x, y), EuclideanDistanceValue(x, y), 1e-9);
}

TEST(CidTest, PenalizesComplexityMismatch) {
  const std::size_t m = 64;
  Series smooth(m);
  Series rough(m);
  common::Rng rng(7);
  for (std::size_t t = 0; t < m; ++t) {
    smooth[t] = std::sin(0.1 * static_cast<double>(t));
    rough[t] = smooth[t] + 0.5 * rng.Gaussian();
  }
  EXPECT_GT(CidDistance(smooth, rough),
            EuclideanDistanceValue(smooth, rough));
}

TEST(CidTest, ComplexityEstimateIsRootSumSquaredIncrements) {
  const Series x = {0.0, 3.0, 3.0, -1.0};
  // Increments 3, 0, -4 -> sqrt(9 + 0 + 16) = 5.
  EXPECT_DOUBLE_EQ(ComplexityEstimate(x), 5.0);
}

TEST(CidTest, FlatSeriesUseFactorOne) {
  const Series flat(8, 2.0);
  const Series other = {1, 2, 1, 2, 1, 2, 1, 2};
  EXPECT_NEAR(CidDistance(flat, other),
              EuclideanDistanceValue(flat, other), 1e-12);
}

TEST(MinkowskiTest, SpecialCases) {
  const Series x = {0.0, 0.0};
  const Series y = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(MinkowskiDistance(x, y, 1.0), 7.0);   // Manhattan.
  EXPECT_DOUBLE_EQ(MinkowskiDistance(x, y, 2.0), 5.0);   // Euclidean.
  EXPECT_DOUBLE_EQ(ChebyshevDistance(x, y), 4.0);        // L-infinity.
}

TEST(MinkowskiTest, MonotoneNonIncreasingInP) {
  common::Rng rng(8);
  const Series x = RandomSeries(16, &rng);
  const Series y = RandomSeries(16, &rng);
  double previous = MinkowskiDistance(x, y, 1.0);
  for (double p : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    const double current = MinkowskiDistance(x, y, p);
    EXPECT_LE(current, previous + 1e-9);
    previous = current;
  }
  EXPECT_GE(previous, ChebyshevDistance(x, y) - 1e-9);
}

TEST(ElasticMeasureWrappersTest, NamesAndCoherence) {
  common::Rng rng(9);
  const Series x = RandomSeries(12, &rng);
  const Series y = RandomSeries(12, &rng);
  const ErpMeasure erp;
  const EdrMeasure edr;
  const MsmMeasure msm;
  const CidMeasure cid;
  EXPECT_EQ(erp.Name(), "ERP");
  EXPECT_EQ(edr.Name(), "EDR");
  EXPECT_EQ(msm.Name(), "MSM");
  EXPECT_EQ(cid.Name(), "CID");
  EXPECT_DOUBLE_EQ(erp.Distance(x, y), ErpDistance(x, y));
  EXPECT_DOUBLE_EQ(edr.Distance(x, y), EdrDistance(x, y));
  EXPECT_DOUBLE_EQ(msm.Distance(x, y), MsmDistance(x, y));
  EXPECT_DOUBLE_EQ(cid.Distance(x, y), CidDistance(x, y));
}

}  // namespace
}  // namespace kshape::distance
