#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/algorithm.h"
#include "cluster/averaging.h"
#include "cluster/dba.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "cluster/ksc.h"
#include "cluster/spectral.h"
#include "common/random.h"
#include "core/sbd.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "tseries/normalization.h"

namespace kshape::cluster {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

// Two clearly separated level-based classes (no phase games): every
// reasonable algorithm must solve this.
void MakeLevelClasses(int per_class, std::size_t m, common::Rng* rng,
                      std::vector<Series>* series, std::vector<int>* labels) {
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < per_class; ++i) {
      Series s(m);
      for (std::size_t t = 0; t < m; ++t) {
        const double base = k == 0
                                ? std::sin(2.0 * kPi * t / double(m))
                                : std::sin(2.0 * kPi * 3.0 * t / double(m));
        s[t] = base + rng->Gaussian(0.0, 0.05);
      }
      series->push_back(s);
      labels->push_back(k);
    }
  }
}

TEST(AlgorithmHelpersTest, GroupByClusterPartitionsIndices) {
  const std::vector<int> assignments = {0, 1, 0, 2, 1};
  const auto groups = GroupByCluster(assignments, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(groups[2], (std::vector<std::size_t>{3}));
}

TEST(AlgorithmHelpersTest, RandomAssignmentsCoverAllClusters) {
  common::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<int> a = RandomAssignments(20, 5, &rng);
    std::vector<int> counts(5, 0);
    for (int c : a) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, 5);
      ++counts[c];
    }
    for (int c : counts) EXPECT_GT(c, 0);
  }
}

TEST(ArithmeticMeanTest, AveragesSelectedMembers) {
  const std::vector<Series> pool = {{1.0, 2.0}, {3.0, 4.0}, {100.0, 100.0}};
  const ArithmeticMeanAveraging avg;
  common::Rng rng(2);
  const Series mean = avg.Average(pool, {0, 1}, Series(2, 0.0), &rng);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
}

TEST(ArithmeticMeanTest, EmptyClusterIsZero) {
  const std::vector<Series> pool = {{1.0, 2.0}};
  const ArithmeticMeanAveraging avg;
  common::Rng rng(3);
  const Series mean = avg.Average(pool, {}, Series(2, 0.0), &rng);
  EXPECT_DOUBLE_EQ(mean[0], 0.0);
  EXPECT_DOUBLE_EQ(mean[1], 0.0);
}

TEST(DbaTest, AverageOfIdenticalSeriesIsThatSeries) {
  const Series base = {0.0, 1.0, 3.0, 1.0, 0.0};
  const std::vector<Series> pool = {base, base, base};
  const DbaAveraging dba;
  common::Rng rng(4);
  const Series avg = dba.Average(pool, {0, 1, 2}, Series(5, 0.0), &rng);
  for (std::size_t t = 0; t < base.size(); ++t) {
    EXPECT_NEAR(avg[t], base[t], 1e-9);
  }
}

TEST(DbaTest, RefinementReducesDtwCost) {
  common::Rng rng(5);
  std::vector<Series> pool;
  for (int i = 0; i < 6; ++i) {
    Series s(40, 0.0);
    const int start = 10 + rng.UniformInt(8);
    for (int t = start; t < start + 8; ++t) s[t] = 1.0;
    pool.push_back(s);
  }
  const std::vector<std::size_t> all = {0, 1, 2, 3, 4, 5};
  const Series start = pool[0];
  const Series refined = DbaRefineOnce(pool, all, start, -1);
  double cost_start = 0.0;
  double cost_refined = 0.0;
  for (const Series& s : pool) {
    const double a = dtw::DtwDistance(start, s);
    const double b = dtw::DtwDistance(refined, s);
    cost_start += a * a;
    cost_refined += b * b;
  }
  EXPECT_LE(cost_refined, cost_start + 1e-9);
}

TEST(KMeansTest, RecoversSeparatedClassesWithEd) {
  common::Rng rng(6);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(15, 64, &rng, &series, &labels);

  const distance::EuclideanDistance ed;
  const ArithmeticMeanAveraging avg;
  const KMeans kmeans(&ed, &avg, "k-AVG+ED");
  EXPECT_EQ(kmeans.Name(), "k-AVG+ED");

  common::Rng cluster_rng(7);
  const ClusteringResult result = kmeans.Cluster(series, 2, &cluster_rng);
  EXPECT_GT(eval::RandIndex(labels, result.assignments), 0.95);
  EXPECT_TRUE(result.converged);
}

TEST(KMeansTest, NoEmptyClusters) {
  common::Rng rng(8);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(4, 32, &rng, &series, &labels);

  const distance::EuclideanDistance ed;
  const ArithmeticMeanAveraging avg;
  const KMeans kmeans(&ed, &avg, "k-AVG+ED");
  common::Rng cluster_rng(9);
  // Ask for more clusters than natural groups; none may end up empty.
  const ClusteringResult result = kmeans.Cluster(series, 5, &cluster_rng);
  std::vector<int> counts(5, 0);
  for (int a : result.assignments) ++counts[a];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(PamTest, MatchesBruteForceOnTinyInstance) {
  // 6 points on a line; k=2. Brute-force the optimal medoid pair.
  const std::vector<double> points = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  const std::size_t n = points.size();
  linalg::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d(i, j) = std::fabs(points[i] - points[j]);
    }
  }
  double best_cost = 1e18;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      double cost = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        cost += std::min(d(i, a), d(i, b));
      }
      best_cost = std::min(best_cost, cost);
    }
  }

  common::Rng rng(10);
  const ClusteringResult result = PamOnMatrix(d, 2, &rng, PamOptions{});
  // Recover the medoid cost from the assignment.
  double pam_cost = 0.0;
  const auto groups = GroupByCluster(result.assignments, 2);
  for (const auto& group : groups) {
    ASSERT_FALSE(group.empty());
    double best_group = 1e18;
    for (std::size_t candidate : group) {
      double cost = 0.0;
      for (std::size_t i : group) cost += d(i, candidate);
      best_group = std::min(best_group, cost);
    }
    pam_cost += best_group;
  }
  EXPECT_NEAR(pam_cost, best_cost, 1e-9);
}

TEST(PamTest, BuildInitIsDeterministicAndGood) {
  common::Rng rng(11);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(10, 48, &rng, &series, &labels);

  const distance::EuclideanDistance ed;
  PamOptions options;
  options.use_build_init = true;
  const KMedoids pam(&ed, "PAM+ED", options);
  common::Rng rng_a(1);
  common::Rng rng_b(2);
  const auto result_a = pam.Cluster(series, 2, &rng_a);
  const auto result_b = pam.Cluster(series, 2, &rng_b);
  EXPECT_EQ(result_a.assignments, result_b.assignments);
  EXPECT_GT(eval::RandIndex(labels, result_a.assignments), 0.9);
}

TEST(PamTest, MedoidsAreClusterMembers) {
  common::Rng rng(12);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(8, 32, &rng, &series, &labels);

  const distance::EuclideanDistance ed;
  const KMedoids pam(&ed, "PAM+ED");
  common::Rng cluster_rng(13);
  const auto result = pam.Cluster(series, 2, &cluster_rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  for (const Series& medoid : result.centroids) {
    const bool found = std::any_of(series.begin(), series.end(),
                                   [&](const Series& s) { return s == medoid; });
    EXPECT_TRUE(found);
  }
}

TEST(HierarchicalTest, KnownSingleLinkageDendrogram) {
  // Points 0, 1, 10: single linkage merges {0,1} at 1 then {0,1},{10} at 9.
  linalg::Matrix d(3, 3);
  d(0, 1) = d(1, 0) = 1.0;
  d(0, 2) = d(2, 0) = 10.0;
  d(1, 2) = d(2, 1) = 9.0;
  const auto merges = AgglomerativeDendrogram(d, Linkage::kSingle);
  ASSERT_EQ(merges.size(), 2u);
  EXPECT_DOUBLE_EQ(merges[0].height, 1.0);
  EXPECT_DOUBLE_EQ(merges[1].height, 9.0);

  const std::vector<int> two = CutDendrogram(merges, 3, 2);
  EXPECT_EQ(two[0], two[1]);
  EXPECT_NE(two[0], two[2]);
}

TEST(HierarchicalTest, CompleteLinkageUsesMaxDistance) {
  linalg::Matrix d(3, 3);
  d(0, 1) = d(1, 0) = 1.0;
  d(0, 2) = d(2, 0) = 10.0;
  d(1, 2) = d(2, 1) = 9.0;
  const auto merges = AgglomerativeDendrogram(d, Linkage::kComplete);
  EXPECT_DOUBLE_EQ(merges[1].height, 10.0);  // max(10, 9)
}

TEST(HierarchicalTest, AverageLinkageIsSizeWeighted) {
  linalg::Matrix d(3, 3);
  d(0, 1) = d(1, 0) = 1.0;
  d(0, 2) = d(2, 0) = 10.0;
  d(1, 2) = d(2, 1) = 8.0;
  const auto merges = AgglomerativeDendrogram(d, Linkage::kAverage);
  EXPECT_DOUBLE_EQ(merges[1].height, 9.0);  // (10 + 8) / 2
}

TEST(HierarchicalTest, CutProducesRequestedClusterCount) {
  common::Rng rng(14);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(6, 32, &rng, &series, &labels);
  const distance::EuclideanDistance ed;
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kAverage, Linkage::kComplete}) {
    const HierarchicalClustering h(&ed, linkage, "H");
    common::Rng cluster_rng(15);
    for (int k : {1, 2, 3, 5}) {
      const auto result = h.Cluster(series, k, &cluster_rng);
      const int distinct =
          *std::max_element(result.assignments.begin(),
                            result.assignments.end()) + 1;
      EXPECT_EQ(distinct, k) << LinkageName(linkage);
    }
  }
}

TEST(HierarchicalTest, SeparatedClassesAreRecovered) {
  common::Rng rng(16);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(8, 48, &rng, &series, &labels);
  const distance::EuclideanDistance ed;
  const HierarchicalClustering h(&ed, Linkage::kComplete, "H-C+ED");
  common::Rng cluster_rng(17);
  const auto result = h.Cluster(series, 2, &cluster_rng);
  EXPECT_GT(eval::RandIndex(labels, result.assignments), 0.95);
}

TEST(SpectralTest, EmbeddingRowsAreUnitNorm) {
  common::Rng rng(18);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(6, 32, &rng, &series, &labels);
  const distance::EuclideanDistance ed;
  const linalg::Matrix d = PairwiseDistanceMatrix(series, ed);
  const linalg::Matrix embedding = SpectralEmbedding(d, 2, -1.0);
  ASSERT_EQ(embedding.rows(), series.size());
  ASSERT_EQ(embedding.cols(), 2u);
  for (std::size_t i = 0; i < embedding.rows(); ++i) {
    double norm = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
      norm += embedding(i, c) * embedding(i, c);
    }
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(SpectralTest, RecoversSeparatedClasses) {
  common::Rng rng(19);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(10, 48, &rng, &series, &labels);
  const distance::EuclideanDistance ed;
  const SpectralClustering spectral(&ed, "S+ED");
  common::Rng cluster_rng(20);
  const auto result = spectral.Cluster(series, 2, &cluster_rng);
  EXPECT_GT(eval::RandIndex(labels, result.assignments), 0.95);
}

TEST(KscDistanceTest, InvariantToScaleOfEitherArgument) {
  common::Rng rng(21);
  Series x(32);
  Series y(32);
  for (double& v : x) v = rng.Gaussian();
  for (double& v : y) v = rng.Gaussian();
  const double base = KscDistanceValue(x, y);
  Series y_scaled = y;
  for (double& v : y_scaled) v *= 5.0;
  EXPECT_NEAR(KscDistanceValue(x, y_scaled), base, 1e-9);
  Series x_scaled = x;
  for (double& v : x_scaled) v *= 3.0;
  EXPECT_NEAR(KscDistanceValue(x_scaled, y), base, 1e-9);
}

TEST(KscDistanceTest, ZeroForScaledShiftedCopy) {
  const std::size_t m = 64;
  Series x(m, 0.0);
  for (std::size_t t = 20; t < 30; ++t) x[t] = 1.0;
  Series y = tseries::ShiftWithZeroFill(x, 6);
  for (double& v : y) v *= 2.5;
  EXPECT_NEAR(KscDistanceValue(x, y), 0.0, 1e-9);
}

TEST(KscDistanceTest, ZeroNormConventions) {
  const Series zero(8, 0.0);
  const Series x = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(KscDistanceValue(zero, zero), 0.0);
  EXPECT_DOUBLE_EQ(KscDistanceValue(zero, x), 1.0);
}

TEST(KscTest, RecoversScaledShiftedClusters) {
  common::Rng rng(22);
  std::vector<Series> series;
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < 10; ++i) {
      Series s(64);
      const double scale = rng.Uniform(0.5, 2.0);
      const double phase = rng.Uniform(0.0, 2.0 * kPi);
      // Frequencies 1 and 3: distinct enough that restarts converge.
      for (std::size_t t = 0; t < 64; ++t) {
        s[t] = scale * std::sin(2.0 * kPi * (2 * k + 1) * t / 64.0 + phase) +
               rng.Gaussian(0.0, 0.05);
      }
      series.push_back(s);
      labels.push_back(k);
    }
  }
  const Ksc ksc;
  EXPECT_EQ(ksc.Name(), "KSC");
  // Average over restarts, as the paper's protocol does.
  common::Rng seeder(23);
  double total = 0.0;
  const int runs = 5;
  for (int run = 0; run < runs; ++run) {
    common::Rng cluster_rng = seeder.Fork();
    const auto result = ksc.Cluster(series, 2, &cluster_rng);
    total += eval::RandIndex(labels, result.assignments);
  }
  EXPECT_GT(total / runs, 0.8);
}

TEST(KDbaCombinationTest, ClustersShiftedBumps) {
  // k-means + DTW + DBA (= k-DBA) on shifted bumps vs double bumps.
  common::Rng rng(24);
  std::vector<Series> series;
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < 8; ++i) {
      Series s(48, 0.0);
      const int start = 10 + rng.UniformInt(6);
      for (int t = start; t < start + 6; ++t) s[t] = 1.0;
      if (k == 1) {
        for (int t = start + 14; t < start + 20 && t < 48; ++t) s[t] = 1.0;
      }
      series.push_back(tseries::ZNormalized(s));
      labels.push_back(k);
    }
  }
  const dtw::DtwMeasure dtw_measure = dtw::DtwMeasure::Unconstrained();
  const DbaAveraging dba;
  const KMeans kdba(&dtw_measure, &dba, "k-DBA");
  common::Rng cluster_rng(25);
  const auto result = kdba.Cluster(series, 2, &cluster_rng);
  EXPECT_GT(eval::RandIndex(labels, result.assignments), 0.8);
}

TEST(PairwiseDistanceMatrixTest, SymmetricWithZeroDiagonal) {
  common::Rng rng(26);
  std::vector<Series> series;
  std::vector<int> labels;
  MakeLevelClasses(4, 16, &rng, &series, &labels);
  const distance::EuclideanDistance ed;
  const linalg::Matrix d = PairwiseDistanceMatrix(series, ed);
  for (std::size_t i = 0; i < d.rows(); ++i) {
    EXPECT_DOUBLE_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < d.cols(); ++j) {
      EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
    }
  }
}

}  // namespace
}  // namespace kshape::cluster
