#include "eval/metrics.h"

#include <vector>

#include <gtest/gtest.h>

namespace kshape::eval {
namespace {

TEST(ContingencyTest, CountsPairs) {
  const std::vector<int> labels = {0, 0, 1, 1, 1};
  const std::vector<int> clusters = {7, 7, 7, 9, 9};
  const linalg::Matrix table = ContingencyTable(labels, clusters);
  ASSERT_EQ(table.rows(), 2u);
  ASSERT_EQ(table.cols(), 2u);
  EXPECT_DOUBLE_EQ(table(0, 0), 2.0);  // label 0 in cluster 7
  EXPECT_DOUBLE_EQ(table(1, 0), 1.0);  // label 1 in cluster 7
  EXPECT_DOUBLE_EQ(table(1, 1), 2.0);  // label 1 in cluster 9
  EXPECT_DOUBLE_EQ(table(0, 1), 0.0);
}

TEST(RandIndexTest, PerfectAgreementIsOne) {
  const std::vector<int> labels = {0, 0, 1, 1, 2};
  const std::vector<int> clusters = {5, 5, 3, 3, 8};  // Renamed clusters.
  EXPECT_DOUBLE_EQ(RandIndex(labels, clusters), 1.0);
}

TEST(RandIndexTest, HandComputedExample) {
  // labels {a,a,a,b,b,b}, clusters {1,1,2,2,3,3}.
  // Pairs: C(6,2)=15. TP: same-label same-cluster pairs = (a1,a2),(b2,b3)=2.
  // Same-cluster pairs total = 3 -> FP = 1. Same-label pairs = 6 -> FN = 4.
  // TN = 15 - 2 - 1 - 4 = 8. RI = (2+8)/15 = 2/3.
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  const std::vector<int> clusters = {1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(RandIndex(labels, clusters), 10.0 / 15.0, 1e-12);
}

TEST(RandIndexTest, LabelPermutationInvariance) {
  const std::vector<int> labels = {0, 1, 0, 1, 2, 2};
  const std::vector<int> a = {0, 1, 0, 1, 2, 2};
  const std::vector<int> b = {2, 0, 2, 0, 1, 1};  // Same partition renamed.
  EXPECT_DOUBLE_EQ(RandIndex(labels, a), RandIndex(labels, b));
}

TEST(AdjustedRandIndexTest, PerfectIsOneAndIndependentIsNearZero) {
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(labels, labels), 1.0);
  // All points in one cluster: ARI should be 0 (chance level).
  const std::vector<int> one_cluster(6, 0);
  EXPECT_NEAR(AdjustedRandIndex(labels, one_cluster), 0.0, 1e-12);
}

TEST(AdjustedRandIndexTest, KnownExampleFromHubertArabie) {
  // Standard worked example: ARI is lower than RI for partial agreement.
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  const std::vector<int> clusters = {0, 0, 1, 1, 1, 1};
  const double ri = RandIndex(labels, clusters);
  const double ari = AdjustedRandIndex(labels, clusters);
  EXPECT_GT(ri, ari);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(NmiTest, BoundsAndPerfectScore) {
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(labels, labels), 1.0);
  const std::vector<int> renamed = {9, 9, 4, 4};
  EXPECT_NEAR(NormalizedMutualInformation(labels, renamed), 1.0, 1e-12);
  // One trivial partition: NMI defined as 0.
  const std::vector<int> trivial(4, 0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(labels, trivial), 0.0);
}

TEST(NmiTest, IndependentPartitionsScoreLow) {
  // A checkerboard split carries no information about the labels.
  const std::vector<int> labels = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> clusters = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(labels, clusters), 0.0, 1e-9);
}

TEST(PurityTest, MajorityFraction) {
  const std::vector<int> labels = {0, 0, 0, 1, 1, 2};
  const std::vector<int> clusters = {0, 0, 1, 1, 1, 1};
  // Cluster 0: majority label 0 (2). Cluster 1: majority label 1 (2).
  EXPECT_NEAR(Purity(labels, clusters), 4.0 / 6.0, 1e-12);
}

TEST(HungarianTest, SolvesKnownAssignment) {
  // Cost matrix with the obvious optimum on the anti-diagonal.
  linalg::Matrix cost(3, 3);
  cost(0, 0) = 4; cost(0, 1) = 1; cost(0, 2) = 3;
  cost(1, 0) = 2; cost(1, 1) = 0; cost(1, 2) = 5;
  cost(2, 0) = 3; cost(2, 1) = 2; cost(2, 2) = 2;
  const std::vector<int> match = SolveMinCostAssignment(cost);
  // Optimal: (0,1), (1,0), (2,2) with cost 1+2+2=5.
  ASSERT_EQ(match.size(), 3u);
  double total = 0.0;
  for (int i = 0; i < 3; ++i) total += cost(i, match[i]);
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(HungarianTest, RectangularCostMatrix) {
  linalg::Matrix cost(2, 3);
  cost(0, 0) = 10; cost(0, 1) = 1; cost(0, 2) = 10;
  cost(1, 0) = 10; cost(1, 1) = 10; cost(1, 2) = 1;
  const std::vector<int> match = SolveMinCostAssignment(cost);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 2);
}

TEST(HungarianAccuracyTest, PerfectAndPermutedClusters) {
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(HungarianAccuracy(labels, labels), 1.0);
  const std::vector<int> permuted = {2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(HungarianAccuracy(labels, permuted), 1.0);
}

TEST(HungarianAccuracyTest, PartialAgreement) {
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  const std::vector<int> clusters = {0, 0, 1, 1, 1, 1};
  // Best matching: cluster0->label0 (2 correct), cluster1->label1 (3).
  EXPECT_NEAR(HungarianAccuracy(labels, clusters), 5.0 / 6.0, 1e-12);
}

TEST(HungarianAccuracyTest, MoreClustersThanClasses) {
  const std::vector<int> labels = {0, 0, 0, 0, 1, 1};
  const std::vector<int> clusters = {0, 0, 1, 1, 2, 2};
  // Two clusters map to class 0 at best 2 points; cluster 2 maps to class 1.
  EXPECT_NEAR(HungarianAccuracy(labels, clusters), 4.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace kshape::eval
