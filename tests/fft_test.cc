#include "fft/fft.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "simd/dispatch.h"

namespace kshape::fft {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTol = 1e-9;

// Reference O(n^2) DFT used as the oracle for all transform tests.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      out[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

std::vector<Complex> RandomComplexVector(std::size_t n, common::Rng* rng) {
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng->Gaussian(), rng->Gaussian());
  return x;
}

std::vector<double> RandomRealVector(std::size_t n, common::Rng* rng) {
  std::vector<double> x(n);
  for (auto& v : x) v = rng->Gaussian();
  return x;
}

TEST(NextPowerOfTwoTest, KnownValues) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(255), 256u);
  EXPECT_EQ(NextPowerOfTwo(256), 256u);
  EXPECT_EQ(NextPowerOfTwo(257), 512u);
}

TEST(IsPowerOfTwoTest, KnownValues) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

TEST(FftTest, SingleElementIsIdentity) {
  std::vector<Complex> x = {Complex(3.5, -1.25)};
  Forward(&x);
  EXPECT_NEAR(x[0].real(), 3.5, kTol);
  EXPECT_NEAR(x[0].imag(), -1.25, kTol);
  Inverse(&x);
  EXPECT_NEAR(x[0].real(), 3.5, kTol);
}

TEST(FftTest, KnownFourPointTransform) {
  // DFT of [1, 2, 3, 4] = [10, -2+2i, -2, -2-2i].
  std::vector<Complex> x = {Complex(1, 0), Complex(2, 0), Complex(3, 0),
                            Complex(4, 0)};
  Forward(&x);
  EXPECT_NEAR(x[0].real(), 10.0, kTol);
  EXPECT_NEAR(x[0].imag(), 0.0, kTol);
  EXPECT_NEAR(x[1].real(), -2.0, kTol);
  EXPECT_NEAR(x[1].imag(), 2.0, kTol);
  EXPECT_NEAR(x[2].real(), -2.0, kTol);
  EXPECT_NEAR(x[2].imag(), 0.0, kTol);
  EXPECT_NEAR(x[3].real(), -2.0, kTol);
  EXPECT_NEAR(x[3].imag(), -2.0, kTol);
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  common::Rng rng(GetParam() * 7919 + 1);
  const std::vector<Complex> x = RandomComplexVector(GetParam(), &rng);
  std::vector<Complex> fast = x;
  Forward(&fast);
  const std::vector<Complex> slow = NaiveDft(x);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-7) << "k=" << k;
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-7) << "k=" << k;
  }
}

TEST_P(FftSizeTest, RoundTripRecoversInput) {
  common::Rng rng(GetParam() * 104729 + 2);
  const std::vector<Complex> x = RandomComplexVector(GetParam(), &rng);
  std::vector<Complex> y = x;
  Forward(&y);
  Inverse(&y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-8);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-8);
  }
}

TEST_P(FftSizeTest, ParsevalIdentityHolds) {
  common::Rng rng(GetParam() * 31 + 3);
  const std::vector<Complex> x = RandomComplexVector(GetParam(), &rng);
  std::vector<Complex> f = x;
  Forward(&f);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const Complex& v : x) time_energy += std::norm(v);
  for (const Complex& v : f) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(x.size()),
              1e-6 * (1.0 + time_energy));
}

// Power-of-two sizes exercise the radix-2 path, the rest Bluestein.
INSTANTIATE_TEST_SUITE_P(AllSizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 13, 16,
                                           25, 27, 32, 33, 64, 100, 127, 128,
                                           129, 255, 256, 257, 500));

TEST(FftTest, LinearityOfTransform) {
  common::Rng rng(42);
  const std::size_t n = 64;
  const std::vector<Complex> x = RandomComplexVector(n, &rng);
  const std::vector<Complex> y = RandomComplexVector(n, &rng);
  const Complex a(1.5, -0.5);
  const Complex b(-2.0, 0.25);

  std::vector<Complex> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = a * x[i] + b * y[i];
  Forward(&combo);

  std::vector<Complex> fx = x;
  std::vector<Complex> fy = y;
  Forward(&fx);
  Forward(&fy);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex expected = a * fx[i] + b * fy[i];
    EXPECT_NEAR(combo[i].real(), expected.real(), 1e-8);
    EXPECT_NEAR(combo[i].imag(), expected.imag(), 1e-8);
  }
}

TEST(RealForwardTest, MatchesComplexTransformWithZeroPadding) {
  common::Rng rng(7);
  const std::vector<double> x = RandomRealVector(20, &rng);
  const std::size_t n = 32;
  const std::vector<Complex> real_fft = RealForward(x, n);

  std::vector<Complex> reference(n, Complex(0, 0));
  for (std::size_t i = 0; i < x.size(); ++i) reference[i] = Complex(x[i], 0);
  Forward(&reference);

  ASSERT_EQ(real_fft.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(real_fft[k].real(), reference[k].real(), 1e-9);
    EXPECT_NEAR(real_fft[k].imag(), reference[k].imag(), 1e-9);
  }
}

TEST(RealForwardTest, SpectrumOfRealInputIsConjugateSymmetric) {
  common::Rng rng(11);
  const std::size_t n = 64;
  const std::vector<double> x = RandomRealVector(n, &rng);
  const std::vector<Complex> f = RealForward(x, n);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(f[k].real(), f[n - k].real(), 1e-9);
    EXPECT_NEAR(f[k].imag(), -f[n - k].imag(), 1e-9);
  }
}

class CrossCorrelationSizeTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossCorrelationSizeTest, FftMatchesNaive) {
  common::Rng rng(GetParam() * 13 + 5);
  const std::vector<double> x = RandomRealVector(GetParam(), &rng);
  const std::vector<double> y = RandomRealVector(GetParam(), &rng);
  const std::vector<double> fast = CrossCorrelationFft(x, y);
  const std::vector<double> slow = CrossCorrelationNaive(x, y);
  ASSERT_EQ(fast.size(), slow.size());
  ASSERT_EQ(fast.size(), 2 * GetParam() - 1);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-7) << "lag index " << i;
  }
}

TEST_P(CrossCorrelationSizeTest, NoPow2MatchesNaive) {
  common::Rng rng(GetParam() * 17 + 6);
  const std::vector<double> x = RandomRealVector(GetParam(), &rng);
  const std::vector<double> y = RandomRealVector(GetParam(), &rng);
  const std::vector<double> fast = CrossCorrelationFftNoPow2(x, y);
  const std::vector<double> slow = CrossCorrelationNaive(x, y);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-7) << "lag index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CrossCorrelationSizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31, 32, 33, 60,
                                           100, 128, 200));

TEST(CrossCorrelationTest, ZeroLagIsDotProduct) {
  common::Rng rng(100);
  const std::size_t m = 50;
  const std::vector<double> x = RandomRealVector(m, &rng);
  const std::vector<double> y = RandomRealVector(m, &rng);
  const std::vector<double> cc = CrossCorrelationFft(x, y);
  double dot = 0.0;
  for (std::size_t i = 0; i < m; ++i) dot += x[i] * y[i];
  EXPECT_NEAR(cc[m - 1], dot, 1e-8);
}

TEST(CrossCorrelationTest, SelfCorrelationPeaksAtZeroLag) {
  common::Rng rng(101);
  const std::vector<double> x = RandomRealVector(80, &rng);
  const std::vector<double> cc = CrossCorrelationFft(x, x);
  const std::size_t peak =
      std::max_element(cc.begin(), cc.end()) - cc.begin();
  EXPECT_EQ(peak, x.size() - 1);
}

TEST(CrossCorrelationTest, DetectsKnownShift) {
  // y is x delayed by 7 samples: the peak must sit at lag +7.
  const std::size_t m = 64;
  std::vector<double> x(m, 0.0);
  std::vector<double> y(m, 0.0);
  for (std::size_t t = 0; t < m; ++t) {
    x[t] = std::sin(2.0 * kPi * 3.0 * t / m);
  }
  const int shift = 7;
  for (std::size_t t = shift; t < m; ++t) y[t] = x[t - shift];
  // R_k(x, y) peaks where x slides left to meet the delayed copy: k = -7.
  const std::vector<double> cc = CrossCorrelationFft(x, y);
  const std::size_t peak =
      std::max_element(cc.begin(), cc.end()) - cc.begin();
  EXPECT_EQ(static_cast<int>(peak) - static_cast<int>(m - 1), -shift);
}

TEST(ConvolveTest, MatchesHandComputedExample) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, 5};
  // Linear convolution: [4, 13, 22, 15].
  const std::vector<double> c = Convolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[0], 4.0, 1e-9);
  EXPECT_NEAR(c[1], 13.0, 1e-9);
  EXPECT_NEAR(c[2], 22.0, 1e-9);
  EXPECT_NEAR(c[3], 15.0, 1e-9);
}

TEST(ConvolveTest, DeltaIsConvolutionIdentity) {
  common::Rng rng(5);
  const std::vector<double> x = RandomRealVector(40, &rng);
  const std::vector<double> delta = {1.0};
  const std::vector<double> c = Convolve(x, delta);
  ASSERT_EQ(c.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(c[i], x[i], 1e-9);
  }
}

TEST(PlanCacheTest, ReturnsSameObjectForSameSize) {
  const Radix2Plan& a = GetPlan(64);
  const Radix2Plan& b = GetPlan(64);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.n(), 64u);
}

// The radix-2 butterfly passes route through the simd::radix2_pass kernel,
// whose scalar and AVX2 variants promise bit-identical results (fixed
// rounding sequence, no FMA contraction). These tests pin that contract at
// the transform level: flipping the backend must not move a single bit.
class FftBackendTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = simd::ActiveBackend(); }
  void TearDown() override { simd::SetBackendForTesting(original_); }

 private:
  simd::Backend original_ = simd::Backend::kScalar;
};

TEST_F(FftBackendTest, ForwardBitIdenticalAcrossBackends) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 backend not available";
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 128u, 256u, 1024u}) {
    common::Rng rng(n * 19 + 3);
    const std::vector<Complex> x = RandomComplexVector(n, &rng);

    simd::SetBackendForTesting(simd::Backend::kScalar);
    std::vector<Complex> scalar = x;
    Forward(&scalar);

    simd::SetBackendForTesting(simd::Backend::kAvx2);
    std::vector<Complex> avx2 = x;
    Forward(&avx2);

    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(scalar[k].real(), avx2[k].real()) << "n=" << n << " k=" << k;
      EXPECT_EQ(scalar[k].imag(), avx2[k].imag()) << "n=" << n << " k=" << k;
    }
  }
}

TEST_F(FftBackendTest, InverseBitIdenticalAcrossBackends) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 backend not available";
  for (std::size_t n : {2u, 8u, 32u, 512u}) {
    common::Rng rng(n * 23 + 9);
    const std::vector<Complex> x = RandomComplexVector(n, &rng);

    simd::SetBackendForTesting(simd::Backend::kScalar);
    std::vector<Complex> scalar = x;
    Inverse(&scalar);

    simd::SetBackendForTesting(simd::Backend::kAvx2);
    std::vector<Complex> avx2 = x;
    Inverse(&avx2);

    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(scalar[k].real(), avx2[k].real()) << "n=" << n << " k=" << k;
      EXPECT_EQ(scalar[k].imag(), avx2[k].imag()) << "n=" << n << " k=" << k;
    }
  }
}

TEST_F(FftBackendTest, CrossCorrelationBitIdenticalAcrossBackends) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 backend not available";
  // 60 pads to a non-power-of-two 119 under NoPow2 (Bluestein, whose inner
  // convolutions also run on the kernel); 128 stays pure radix-2.
  for (std::size_t m : {60u, 128u}) {
    common::Rng rng(m * 29 + 1);
    const std::vector<double> x = RandomRealVector(m, &rng);
    const std::vector<double> y = RandomRealVector(m, &rng);

    simd::SetBackendForTesting(simd::Backend::kScalar);
    const std::vector<double> scalar_fft = CrossCorrelationFft(x, y);
    const std::vector<double> scalar_blu = CrossCorrelationFftNoPow2(x, y);

    simd::SetBackendForTesting(simd::Backend::kAvx2);
    const std::vector<double> avx2_fft = CrossCorrelationFft(x, y);
    const std::vector<double> avx2_blu = CrossCorrelationFftNoPow2(x, y);

    for (std::size_t i = 0; i < scalar_fft.size(); ++i) {
      EXPECT_EQ(scalar_fft[i], avx2_fft[i]) << "m=" << m << " lag=" << i;
    }
    for (std::size_t i = 0; i < scalar_blu.size(); ++i) {
      EXPECT_EQ(scalar_blu[i], avx2_blu[i]) << "m=" << m << " lag=" << i;
    }
  }
}

}  // namespace
}  // namespace kshape::fft
