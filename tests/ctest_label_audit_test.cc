// Tier-1 registration audit: every test source in tests/ must be registered
// in tests/CMakeLists.txt through kshape_add_test, which is what applies the
// `tier1` CTest label the CI legs select on (ctest -L tier1). A test file
// added without a registration silently never runs — this audit turns that
// into a failing build instead.
//
// The tests source directory is baked in at compile time
// (KSHAPE_TESTS_SOURCE_DIR, set by the CMakeLists.txt being audited), so the
// audit reads the same files the build configured from.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef KSHAPE_TESTS_SOURCE_DIR
#error "KSHAPE_TESTS_SOURCE_DIR must point at the tests/ source directory"
#endif

namespace kshape {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::string CMakeListsPath() {
  return (fs::path(KSHAPE_TESTS_SOURCE_DIR) / "CMakeLists.txt").string();
}

// Test names registered via kshape_add_test(<name> ...). A name ends at the
// first whitespace or closing paren after the opening one.
std::set<std::string> RegisteredTests(const std::string& cmake) {
  std::set<std::string> names;
  const std::string call = "kshape_add_test(";
  std::size_t pos = 0;
  while ((pos = cmake.find(call, pos)) != std::string::npos) {
    pos += call.size();
    std::size_t end = pos;
    while (end < cmake.size() && cmake[end] != ' ' && cmake[end] != ')' &&
           cmake[end] != '\n') {
      ++end;
    }
    const std::string name = cmake.substr(pos, end - pos);
    // Skip the function definition itself (`function(kshape_add_test name)`
    // never matches: the find pattern includes the paren).
    if (!name.empty() && name != "name") names.insert(name);
    pos = end;
  }
  return names;
}

TEST(CtestLabelAuditTest, EveryTestSourceIsRegistered) {
  const std::string cmake = ReadFile(CMakeListsPath());
  const std::set<std::string> registered = RegisteredTests(cmake);
  ASSERT_FALSE(registered.empty());

  std::vector<std::string> missing;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(KSHAPE_TESTS_SOURCE_DIR)) {
    if (!entry.is_regular_file()) continue;
    const fs::path path = entry.path();
    if (path.extension() != ".cc") continue;
    const std::string stem = path.stem().string();
    if (registered.count(stem) == 0) missing.push_back(stem);
  }
  std::sort(missing.begin(), missing.end());
  EXPECT_TRUE(missing.empty())
      << "test sources without a kshape_add_test registration (they would "
         "never run under ctest -L tier1): "
      << [&] {
           std::string joined;
           for (const std::string& name : missing) {
             if (!joined.empty()) joined += ", ";
             joined += name;
           }
           return joined;
         }();
}

TEST(CtestLabelAuditTest, EveryRegistrationHasASourceFile) {
  // The inverse direction: a registration whose source was deleted breaks
  // the build anyway, but a typo'd name (registering a stale stem while the
  // real file sits unregistered) would not — catch both ends.
  const std::string cmake = ReadFile(CMakeListsPath());
  for (const std::string& name : RegisteredTests(cmake)) {
    EXPECT_TRUE(
        fs::exists(fs::path(KSHAPE_TESTS_SOURCE_DIR) / (name + ".cc")))
        << "kshape_add_test(" << name << ") has no " << name << ".cc";
  }
}

TEST(CtestLabelAuditTest, RegistrationFunctionAppliesTheTierLabel) {
  // The audit is only meaningful if kshape_add_test still applies the tier1
  // label every CI leg filters on.
  const std::string cmake = ReadFile(CMakeListsPath());
  EXPECT_NE(cmake.find("LABELS \"tier1\""), std::string::npos)
      << "kshape_add_test no longer labels tests tier1; the CI tier-1 "
         "selection (ctest -L tier1) would run nothing";
  EXPECT_NE(cmake.find("set_tests_properties"), std::string::npos);
}

TEST(CtestLabelAuditTest, ThisAuditIsItselfRegistered) {
  const std::string cmake = ReadFile(CMakeListsPath());
  EXPECT_EQ(RegisteredTests(cmake).count("ctest_label_audit_test"), 1u);
}

}  // namespace
}  // namespace kshape
