#include "cluster/pairwise_averaging.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distance/dtw.h"
#include "linalg/matrix.h"

namespace kshape::cluster {
namespace {

using tseries::Series;

std::vector<Series> ShiftedBumps(common::Rng* rng, int count,
                                 std::size_t m = 48) {
  std::vector<Series> pool;
  for (int i = 0; i < count; ++i) {
    Series s(m, 0.0);
    const int start = 10 + rng->UniformInt(10);
    for (int t = start; t < start + 8; ++t) s[t] = 1.0;
    pool.push_back(s);
  }
  return pool;
}

TEST(DtwPairAverageTest, AverageOfIdenticalIsIdentity) {
  const Series x = {0.0, 1.0, 2.0, 1.0, 0.0};
  const Series avg = DtwPairAverage(x, x, 1.0, 1.0);
  ASSERT_EQ(avg.size(), x.size());
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(avg[t], x[t], 1e-9);
  }
}

TEST(DtwPairAverageTest, WeightsBiasTowardHeavierSequence) {
  const Series x(10, 0.0);
  const Series y(10, 4.0);
  // Weight 3:1 in favour of x -> values at 1.0.
  const Series avg = DtwPairAverage(x, y, 3.0, 1.0);
  for (double v : avg) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(DtwPairAverageTest, OutputLengthMatchesInput) {
  common::Rng rng(1);
  const auto pool = ShiftedBumps(&rng, 2);
  const Series avg = DtwPairAverage(pool[0], pool[1], 1.0, 1.0);
  EXPECT_EQ(avg.size(), pool[0].size());
}

TEST(NlaafTest, AverageOfIdenticalCopiesIsTheCopy) {
  const Series base = {0.0, 2.0, 5.0, 2.0, 0.0, -1.0};
  const std::vector<Series> pool = {base, base, base, base};
  const NlaafAveraging nlaaf;
  common::Rng rng(2);
  const Series avg = nlaaf.Average(pool, {0, 1, 2, 3}, Series(6, 0.0), &rng);
  for (std::size_t t = 0; t < base.size(); ++t) {
    EXPECT_NEAR(avg[t], base[t], 1e-9);
  }
}

TEST(NlaafTest, EmptyClusterGivesZeros) {
  const std::vector<Series> pool = {{1.0, 2.0}};
  const NlaafAveraging nlaaf;
  common::Rng rng(3);
  const Series avg = nlaaf.Average(pool, {}, Series(2, 0.0), &rng);
  EXPECT_DOUBLE_EQ(avg[0], 0.0);
  EXPECT_DOUBLE_EQ(avg[1], 0.0);
}

TEST(NlaafTest, HandlesOddMemberCounts) {
  common::Rng rng(4);
  const auto pool = ShiftedBumps(&rng, 5);
  const NlaafAveraging nlaaf;
  const Series avg =
      nlaaf.Average(pool, {0, 1, 2, 3, 4}, Series(48, 0.0), &rng);
  EXPECT_EQ(avg.size(), 48u);
  EXPECT_GT(linalg::Norm(avg), 0.0);
}

TEST(PsaTest, AverageOfIdenticalCopiesIsTheCopy) {
  const Series base = {1.0, -1.0, 3.0, 0.0};
  const std::vector<Series> pool = {base, base, base};
  const PsaAveraging psa;
  common::Rng rng(5);
  const Series avg = psa.Average(pool, {0, 1, 2}, Series(4, 0.0), &rng);
  for (std::size_t t = 0; t < base.size(); ++t) {
    EXPECT_NEAR(avg[t], base[t], 1e-9);
  }
}

TEST(PsaTest, RepresentsShiftedBumpsBetterThanNothing) {
  common::Rng rng(6);
  const auto pool = ShiftedBumps(&rng, 6);
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < pool.size(); ++i) all.push_back(i);

  const PsaAveraging psa;
  const Series avg = psa.Average(pool, all, Series(48, 0.0), &rng);
  // The average must be closer (DTW) to the members than a flat zero line.
  const Series zeros(48, 0.0);
  double avg_cost = 0.0;
  double zero_cost = 0.0;
  for (const Series& member : pool) {
    avg_cost += dtw::DtwDistance(avg, member);
    zero_cost += dtw::DtwDistance(zeros, member);
  }
  EXPECT_LT(avg_cost, zero_cost);
}

TEST(PsaTest, NamesAreCorrect) {
  EXPECT_EQ(NlaafAveraging().Name(), "NLAAF");
  EXPECT_EQ(PsaAveraging().Name(), "PSA");
}

}  // namespace
}  // namespace kshape::cluster
