#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distance/dtw.h"
#include "tseries/normalization.h"
#include "distance/euclidean.h"

namespace kshape {
namespace {

using tseries::Series;

Series RandomSeries(std::size_t m, common::Rng* rng) {
  Series x(m);
  for (double& v : x) v = rng->Gaussian();
  return x;
}

TEST(EuclideanTest, KnownValue) {
  const Series x = {0.0, 3.0};
  const Series y = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(distance::EuclideanDistanceValue(x, y), 5.0);
  EXPECT_DOUBLE_EQ(distance::SquaredEuclideanDistance(x, y), 25.0);
}

TEST(EuclideanTest, IdentityAndSymmetry) {
  common::Rng rng(1);
  const Series x = RandomSeries(32, &rng);
  const Series y = RandomSeries(32, &rng);
  EXPECT_DOUBLE_EQ(distance::EuclideanDistanceValue(x, x), 0.0);
  EXPECT_DOUBLE_EQ(distance::EuclideanDistanceValue(x, y),
                   distance::EuclideanDistanceValue(y, x));
}

TEST(EuclideanTest, TriangleInequality) {
  common::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Series a = RandomSeries(16, &rng);
    const Series b = RandomSeries(16, &rng);
    const Series c = RandomSeries(16, &rng);
    EXPECT_LE(distance::EuclideanDistanceValue(a, c),
              distance::EuclideanDistanceValue(a, b) +
                  distance::EuclideanDistanceValue(b, c) + 1e-12);
  }
}

TEST(EuclideanTest, MeasureWrapperNameAndValue) {
  const distance::EuclideanDistance ed;
  EXPECT_EQ(ed.Name(), "ED");
  EXPECT_DOUBLE_EQ(ed.Distance(Series{1.0, 1.0}, Series{1.0, 1.0}), 0.0);
}

TEST(DtwTest, EqualSeriesHaveZeroDistance) {
  common::Rng rng(3);
  const Series x = RandomSeries(40, &rng);
  EXPECT_DOUBLE_EQ(dtw::DtwDistance(x, x), 0.0);
}

TEST(DtwTest, NeverExceedsEuclidean) {
  // The diagonal path is always available, so DTW <= ED.
  common::Rng rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const Series x = RandomSeries(30, &rng);
    const Series y = RandomSeries(30, &rng);
    EXPECT_LE(dtw::DtwDistance(x, y),
              distance::EuclideanDistanceValue(x, y) + 1e-12);
  }
}

TEST(DtwTest, IsSymmetric) {
  common::Rng rng(5);
  const Series x = RandomSeries(25, &rng);
  const Series y = RandomSeries(25, &rng);
  EXPECT_NEAR(dtw::DtwDistance(x, y), dtw::DtwDistance(y, x), 1e-10);
}

TEST(DtwTest, AbsorbsTimeShiftBetterThanEd) {
  // A shifted bump: DTW should be much smaller than ED.
  const std::size_t m = 60;
  Series x(m, 0.0);
  Series y(m, 0.0);
  for (std::size_t t = 20; t < 30; ++t) x[t] = 1.0;
  for (std::size_t t = 26; t < 36; ++t) y[t] = 1.0;
  EXPECT_LT(dtw::DtwDistance(x, y),
            0.3 * distance::EuclideanDistanceValue(x, y));
}

TEST(DtwTest, HandlesUnequalLengths) {
  const Series x = {0.0, 1.0, 2.0, 1.0, 0.0};
  const Series y = {0.0, 1.0, 1.5, 2.0, 1.0, 0.5, 0.0};
  const double d = dtw::DtwDistance(x, y);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(ConstrainedDtwTest, WindowZeroEqualsEuclidean) {
  common::Rng rng(6);
  const Series x = RandomSeries(20, &rng);
  const Series y = RandomSeries(20, &rng);
  EXPECT_NEAR(dtw::ConstrainedDtwDistance(x, y, 0),
              distance::EuclideanDistanceValue(x, y), 1e-10);
}

TEST(ConstrainedDtwTest, FullWindowEqualsUnconstrained) {
  common::Rng rng(7);
  const Series x = RandomSeries(24, &rng);
  const Series y = RandomSeries(24, &rng);
  EXPECT_NEAR(dtw::ConstrainedDtwDistance(x, y, 23), dtw::DtwDistance(x, y),
              1e-10);
}

TEST(ConstrainedDtwTest, DistanceIsNonIncreasingInWindow) {
  common::Rng rng(8);
  const Series x = RandomSeries(32, &rng);
  const Series y = RandomSeries(32, &rng);
  double previous = dtw::ConstrainedDtwDistance(x, y, 0);
  for (int w = 1; w < 32; ++w) {
    const double current = dtw::ConstrainedDtwDistance(x, y, w);
    EXPECT_LE(current, previous + 1e-12) << "window " << w;
    previous = current;
  }
}

TEST(ConstrainedDtwTest, WindowFromFraction) {
  EXPECT_EQ(dtw::WindowFromFraction(0.05, 100), 5);
  EXPECT_EQ(dtw::WindowFromFraction(0.10, 100), 10);
  EXPECT_EQ(dtw::WindowFromFraction(0.0, 100), 0);
  EXPECT_EQ(dtw::WindowFromFraction(0.05, 10), 1);  // ceil(0.5)
  EXPECT_EQ(dtw::WindowFromFraction(1.0, 100), 99); // clamped to m-1
}

TEST(WarpingPathTest, PathIsValidAndMatchesDistance) {
  common::Rng rng(9);
  const Series x = RandomSeries(18, &rng);
  const Series y = RandomSeries(18, &rng);
  const dtw::WarpingPath path = dtw::DtwWarpingPath(x, y);
  ASSERT_FALSE(path.pairs.empty());
  EXPECT_EQ(path.pairs.front(), std::make_pair(0, 0));
  EXPECT_EQ(path.pairs.back(), std::make_pair(17, 17));
  // Steps are monotone and move by at most 1 in each coordinate.
  for (std::size_t i = 1; i < path.pairs.size(); ++i) {
    const int di = path.pairs[i].first - path.pairs[i - 1].first;
    const int dj = path.pairs[i].second - path.pairs[i - 1].second;
    EXPECT_TRUE(di == 0 || di == 1);
    EXPECT_TRUE(dj == 0 || dj == 1);
    EXPECT_TRUE(di + dj >= 1);
  }
  // Path cost reproduces the DTW distance.
  double cost = 0.0;
  for (const auto& [i, j] : path.pairs) {
    const double d = x[i] - y[j];
    cost += d * d;
  }
  EXPECT_NEAR(std::sqrt(cost), dtw::DtwDistance(x, y), 1e-9);
  EXPECT_NEAR(path.distance, dtw::DtwDistance(x, y), 1e-9);
}

TEST(EnvelopeTest, MatchesNaiveComputation) {
  common::Rng rng(10);
  const Series x = RandomSeries(50, &rng);
  for (int w : {0, 1, 3, 10, 49}) {
    Series lower, upper;
    dtw::LowerUpperEnvelope(x, w, &lower, &upper);
    for (int i = 0; i < 50; ++i) {
      double lo = x[i];
      double hi = x[i];
      for (int j = std::max(0, i - w); j <= std::min(49, i + w); ++j) {
        lo = std::min(lo, x[j]);
        hi = std::max(hi, x[j]);
      }
      EXPECT_DOUBLE_EQ(lower[i], lo) << "w=" << w << " i=" << i;
      EXPECT_DOUBLE_EQ(upper[i], hi) << "w=" << w << " i=" << i;
    }
  }
}

TEST(LbKeoghTest, IsAdmissibleLowerBound) {
  common::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const Series q = RandomSeries(40, &rng);
    const Series c = RandomSeries(40, &rng);
    const int w = 4;
    Series lower, upper;
    dtw::LowerUpperEnvelope(q, w, &lower, &upper);
    const double bound = dtw::LbKeogh(c, lower, upper);
    const double exact = dtw::ConstrainedDtwDistance(q, c, w);
    EXPECT_LE(bound, exact + 1e-9) << "trial " << trial;
  }
}

TEST(LbKeoghTest, ZeroWhenCandidateInsideEnvelope) {
  const Series q = {0.0, 1.0, 2.0, 1.0};
  Series lower, upper;
  dtw::LowerUpperEnvelope(q, 1, &lower, &upper);
  // The query itself is always inside its own envelope.
  EXPECT_DOUBLE_EQ(dtw::LbKeogh(q, lower, upper), 0.0);
}

TEST(DerivativeTransformTest, ConstantSlopeGivesConstantDerivative) {
  Series x(10);
  for (std::size_t t = 0; t < 10; ++t) x[t] = 2.0 * static_cast<double>(t);
  const Series d = tseries::DerivativeTransform(x);
  ASSERT_EQ(d.size(), 10u);
  for (double v : d) EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(DerivativeTransformTest, TwoPointSeries) {
  const Series x = {1.0, 4.0};
  const Series d = tseries::DerivativeTransform(x);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
}

TEST(DdtwTest, LevelOffsetIsInvisible) {
  // DDTW compares slopes, so a constant offset between series vanishes.
  common::Rng rng(13);
  const Series x = RandomSeries(40, &rng);
  Series shifted = x;
  for (double& v : shifted) v += 100.0;
  const dtw::DdtwMeasure ddtw;
  EXPECT_NEAR(ddtw.Distance(x, shifted), 0.0, 1e-9);
  EXPECT_EQ(ddtw.Name(), "DDTW");
}

TEST(DdtwTest, DistinguishesSlopesThatDtwOnLevelsMisses) {
  // Rising vs falling ramp around the same mean: large under DDTW.
  Series rise(32);
  Series fall(32);
  for (std::size_t t = 0; t < 32; ++t) {
    rise[t] = static_cast<double>(t);
    fall[t] = 31.0 - static_cast<double>(t);
  }
  const dtw::DdtwMeasure ddtw;
  EXPECT_GT(ddtw.Distance(rise, fall), 1.0);
  EXPECT_NEAR(ddtw.Distance(rise, rise), 0.0, 1e-12);
}

TEST(DtwMeasureTest, FixedWindowFactoryUsesExactCells) {
  common::Rng rng(14);
  const Series x = RandomSeries(40, &rng);
  const Series y = RandomSeries(40, &rng);
  const dtw::DtwMeasure fixed = dtw::DtwMeasure::FixedWindow(3, "cDTWopt");
  EXPECT_NEAR(fixed.Distance(x, y),
              dtw::ConstrainedDtwDistance(x, y, 3), 1e-12);
  EXPECT_EQ(fixed.Name(), "cDTWopt");
}

TEST(DtwMeasureTest, WrapperNamesAndBehaviour) {
  const dtw::DtwMeasure full = dtw::DtwMeasure::Unconstrained();
  const dtw::DtwMeasure banded = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");
  EXPECT_EQ(full.Name(), "DTW");
  EXPECT_EQ(banded.Name(), "cDTW5");
  common::Rng rng(12);
  const Series x = RandomSeries(40, &rng);
  const Series y = RandomSeries(40, &rng);
  EXPECT_NEAR(full.Distance(x, y), dtw::DtwDistance(x, y), 1e-10);
  EXPECT_NEAR(banded.Distance(x, y),
              dtw::ConstrainedDtwDistance(x, y, 2), 1e-10);
  EXPECT_GE(banded.Distance(x, y), full.Distance(x, y) - 1e-12);
}

}  // namespace
}  // namespace kshape
