#include "core/sbd.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tseries/normalization.h"

namespace kshape::core {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

Series RandomSeries(std::size_t m, common::Rng* rng) {
  Series x(m);
  for (double& v : x) v = rng->Gaussian();
  return x;
}

Series Sine(std::size_t m, double cycles, double phase) {
  Series x(m);
  for (std::size_t t = 0; t < m; ++t) {
    x[t] = std::sin(2.0 * kPi * cycles * t / static_cast<double>(m) + phase);
  }
  return x;
}

TEST(NccSequenceTest, LengthAndZeroShiftValue) {
  common::Rng rng(1);
  const Series x = tseries::ZNormalized(RandomSeries(50, &rng));
  const Series y = tseries::ZNormalized(RandomSeries(50, &rng));
  const std::vector<double> ncc =
      NccSequence(x, y, NccNormalization::kCoefficient);
  ASSERT_EQ(ncc.size(), 99u);
  // Index m-1 is the zero-shift coefficient: dot / (|x||y|).
  double dot = 0.0;
  for (std::size_t i = 0; i < 50; ++i) dot += x[i] * y[i];
  double nx = 0.0, ny = 0.0;
  for (double v : x) nx += v * v;
  for (double v : y) ny += v * v;
  EXPECT_NEAR(ncc[49], dot / std::sqrt(nx * ny), 1e-10);
}

TEST(NccSequenceTest, CoefficientValuesAreBounded) {
  common::Rng rng(2);
  const Series x = RandomSeries(64, &rng);
  const Series y = RandomSeries(64, &rng);
  for (double v : NccSequence(x, y, NccNormalization::kCoefficient)) {
    EXPECT_LE(v, 1.0 + 1e-10);
    EXPECT_GE(v, -1.0 - 1e-10);
  }
}

TEST(NccSequenceTest, BiasedDividesByLength) {
  const Series x = {1.0, 2.0};
  const Series y = {3.0, 4.0};
  // Raw CC = [R_{-1}, R_0, R_1] = [4, 11, 6]; biased divides by m = 2.
  const std::vector<double> b = NccSequence(x, y, NccNormalization::kBiased);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_NEAR(b[0], 2.0, 1e-10);
  EXPECT_NEAR(b[1], 5.5, 1e-10);
  EXPECT_NEAR(b[2], 3.0, 1e-10);
}

TEST(NccSequenceTest, UnbiasedDividesByOverlap) {
  const Series x = {1.0, 2.0};
  const Series y = {3.0, 4.0};
  const std::vector<double> u = NccSequence(x, y, NccNormalization::kUnbiased);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_NEAR(u[0], 4.0, 1e-10);   // overlap 1
  EXPECT_NEAR(u[1], 5.5, 1e-10);   // overlap 2
  EXPECT_NEAR(u[2], 6.0, 1e-10);   // overlap 1
}

TEST(NccSequenceTest, ZeroNormInputYieldsZeroCoefficientSequence) {
  const Series zero(10, 0.0);
  const Series x = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (double v : NccSequence(x, zero, NccNormalization::kCoefficient)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

class SbdImplTest : public ::testing::TestWithParam<CrossCorrelationImpl> {};

TEST_P(SbdImplTest, SelfDistanceIsZero) {
  common::Rng rng(3);
  const Series x = tseries::ZNormalized(RandomSeries(60, &rng));
  const SbdResult r = Sbd(x, x, GetParam());
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  EXPECT_EQ(r.shift, 0);
}

TEST_P(SbdImplTest, DistanceIsWithinZeroTwo) {
  common::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Series x = RandomSeries(40, &rng);
    const Series y = RandomSeries(40, &rng);
    const double d = Sbd(x, y, GetParam()).distance;
    EXPECT_GE(d, -1e-10);
    EXPECT_LE(d, 2.0 + 1e-10);
  }
}

TEST_P(SbdImplTest, SymmetricInValue) {
  common::Rng rng(5);
  const Series x = RandomSeries(45, &rng);
  const Series y = RandomSeries(45, &rng);
  EXPECT_NEAR(Sbd(x, y, GetParam()).distance, Sbd(y, x, GetParam()).distance,
              1e-9);
}

TEST_P(SbdImplTest, ScaleInvariantForPositiveScale) {
  common::Rng rng(6);
  const Series x = RandomSeries(30, &rng);
  Series scaled = x;
  for (double& v : scaled) v *= 4.2;
  EXPECT_NEAR(Sbd(x, scaled, GetParam()).distance, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Impls, SbdImplTest,
                         ::testing::Values(CrossCorrelationImpl::kFft,
                                           CrossCorrelationImpl::kFftNoPow2,
                                           CrossCorrelationImpl::kNaive));

TEST(SbdTest, AllImplementationsAgree) {
  common::Rng rng(7);
  for (std::size_t m : {5, 17, 32, 63, 64, 100}) {
    const Series x = RandomSeries(m, &rng);
    const Series y = RandomSeries(m, &rng);
    const SbdResult fft = Sbd(x, y, CrossCorrelationImpl::kFft);
    const SbdResult nopow2 = Sbd(x, y, CrossCorrelationImpl::kFftNoPow2);
    const SbdResult naive = Sbd(x, y, CrossCorrelationImpl::kNaive);
    EXPECT_NEAR(fft.distance, naive.distance, 1e-8) << "m=" << m;
    EXPECT_NEAR(nopow2.distance, naive.distance, 1e-8) << "m=" << m;
    EXPECT_EQ(fft.shift, naive.shift) << "m=" << m;
    EXPECT_EQ(nopow2.shift, naive.shift) << "m=" << m;
  }
}

TEST(SbdTest, RecoversKnownShiftAndAlignsY) {
  // A localized bump: the exact-match lag dominates every other lag (a
  // periodic signal would allow an off-by-one lag with a longer overlap to
  // win, which is correct but not what this test probes).
  const std::size_t m = 128;
  Series x(m, 0.0);
  for (std::size_t t = 50; t < 60; ++t) x[t] = 1.0 + 0.1 * (t - 50);
  // y is x delayed by 9 samples (zero fill).
  const Series y = tseries::ShiftWithZeroFill(x, 9);
  const SbdResult r = Sbd(x, y);
  EXPECT_EQ(r.shift, -9);  // Align y by advancing it 9 samples.
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  // The aligned y must now match x on the overlap.
  for (std::size_t t = 0; t + 9 < m; ++t) {
    EXPECT_NEAR(r.aligned_y[t], x[t], 1e-9);
  }
}

TEST(SbdTest, OutOfPhaseSinesAreCloseUnderSbdFarUnderEd) {
  const std::size_t m = 256;
  const Series a = tseries::ZNormalized(Sine(m, 4.0, 0.0));
  const Series b = tseries::ZNormalized(Sine(m, 4.0, kPi));  // Antiphase.
  // ED treats them as opposites; SBD realigns and sees near-identity.
  const double sbd = Sbd(a, b).distance;
  EXPECT_LT(sbd, 0.15);
}

TEST(SbdTest, ZeroNormInputGivesDistanceOne) {
  const Series zero(16, 0.0);
  const Series x = Sine(16, 1.0, 0.0);
  const SbdResult r = Sbd(x, zero);
  EXPECT_DOUBLE_EQ(r.distance, 1.0);
  EXPECT_EQ(r.shift, 0);
  EXPECT_EQ(r.aligned_y, zero);
}

TEST(MaxNccTest, PeakShiftMatchesConstruction) {
  const std::size_t m = 64;
  Series x(m, 0.0);
  for (std::size_t t = 20; t < 28; ++t) x[t] = 1.0;
  const Series y = tseries::ShiftWithZeroFill(x, 5);
  const NccPeak peak = MaxNcc(x, y, NccNormalization::kCoefficient);
  EXPECT_EQ(peak.shift, -5);
  EXPECT_GT(peak.value, 0.9);
}

TEST(SbdDistanceTest, WrapperNamesFollowImplementation) {
  EXPECT_EQ(SbdDistance(CrossCorrelationImpl::kFft).Name(), "SBD");
  EXPECT_EQ(SbdDistance(CrossCorrelationImpl::kFftNoPow2).Name(),
            "SBD_NoPow2");
  EXPECT_EQ(SbdDistance(CrossCorrelationImpl::kNaive).Name(), "SBD_NoFFT");
}

TEST(NccDistanceTest, CoherentWithMaxNcc) {
  common::Rng rng(8);
  const Series x = RandomSeries(33, &rng);
  const Series y = RandomSeries(33, &rng);
  const NccDistance biased(NccNormalization::kBiased);
  EXPECT_EQ(biased.Name(), "NCCb");
  EXPECT_NEAR(biased.Distance(x, y),
              1.0 - MaxNcc(x, y, NccNormalization::kBiased).value, 1e-12);
}

TEST(NccNormalizationNameTest, AllNames) {
  EXPECT_STREQ(NccNormalizationName(NccNormalization::kBiased), "NCCb");
  EXPECT_STREQ(NccNormalizationName(NccNormalization::kUnbiased), "NCCu");
  EXPECT_STREQ(NccNormalizationName(NccNormalization::kCoefficient), "NCCc");
}

}  // namespace
}  // namespace kshape::core
