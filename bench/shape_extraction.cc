// Gram vs matrix-free shape extraction (Algorithm 2): the tentpole claim of
// the matrix-free path is that pooling the aligned members and applying
// M·v = Q(Σ yᵢ(yᵢ·(Qv))) directly is an ~m/iters win over accumulating the
// m×m Gram (O(n_c·m²)) and multiplying it (O(m²) per step) — with the win
// largest on warm starts, where power iteration needs only a handful of
// steps. This bench times ExtractShape end to end (alignment included; it is
// identical on both paths) over cluster sizes n_c and lengths m, warm and
// cold.
//
// Correctness is asserted in-process, not just reported:
//   - per config, the matrix-free and Gram centroids must agree to epsilon
//     (they differ in summation order only — the run aborts past 1e-4);
//   - once per run, a k-Shape clustering with KSHAPE_MATFREE on vs off must
//     produce EXACTLY the same labels and iteration count (the gate-parity
//     acceptance bar, checked here on the bench corpus too).
//
// One BENCH JSON line per (n_c, m):
//
//   BENCH {"bench":"matfree","workload":"shape_extraction","n_c":500,
//          "m":512,"backend":"avx2","gram_warm_seconds":0.21,
//          "matfree_warm_seconds":0.05,"warm_speedup":4.2,
//          "gram_cold_seconds":0.26,"matfree_cold_seconds":0.08,
//          "cold_speedup":3.3,"max_centroid_diff":1.3e-09,
//          "labels_match":true}
//
// Records also land in BENCH_matfree.json (a JSON array) for CI. The
// acceptance bar: >= 3x warm-started at n_c = 500, m = 512. `--smoke` is the
// CI leg (small grid, one rep).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "core/shape_extraction.h"
#include "harness/table.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

using kshape::tseries::Series;

constexpr double kNoiseSigma = 0.5;
constexpr double kPhaseJitter = 0.15 * M_PI;  // See assignment_pruning.cc:
// bounded jitter keeps the top eigenpair separated, so neither path stalls
// into the O(m^3) fallback and the timings measure the iteration itself.

bool g_smoke = false;
std::vector<std::string> g_records;

// One cluster's worth of members: a noisy sine with bounded phase jitter.
Series JitterSine(std::size_t m, kshape::common::Rng* rng) {
  const double phase = rng->Uniform() * kPhaseJitter;
  Series s(m);
  for (std::size_t t = 0; t < m; ++t) {
    const double x =
        2.0 * M_PI * 3.0 * static_cast<double>(t) / static_cast<double>(m) +
        phase;
    s[t] = std::sin(x) + kNoiseSigma * rng->Gaussian();
  }
  return s;
}

std::vector<Series> MakeMembers(std::size_t n_c, std::size_t m,
                                uint64_t seed) {
  kshape::common::Rng rng(seed);
  std::vector<Series> members;
  members.reserve(n_c);
  for (std::size_t i = 0; i < n_c; ++i) {
    members.push_back(kshape::tseries::ZNormalized(JitterSine(m, &rng)));
  }
  return members;
}

double TimeSeconds(int reps, const std::function<void()>& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    kshape::common::Stopwatch timer;
    run();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

void Record(std::size_t n_c, std::size_t m, double gram_warm,
            double matfree_warm, double gram_cold, double matfree_cold,
            double max_diff, bool labels_match) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"matfree\",\"workload\":\"shape_extraction\",\"n_c\":%zu,"
      "\"m\":%zu,\"backend\":\"%s\",\"gram_warm_seconds\":%.6f,"
      "\"matfree_warm_seconds\":%.6f,\"warm_speedup\":%.3f,"
      "\"gram_cold_seconds\":%.6f,\"matfree_cold_seconds\":%.6f,"
      "\"cold_speedup\":%.3f,\"max_centroid_diff\":%.3e,"
      "\"labels_match\":%s}",
      n_c, m, kshape::simd::ActiveBackendName(), gram_warm, matfree_warm,
      matfree_warm > 0.0 ? gram_warm / matfree_warm : 0.0, gram_cold,
      matfree_cold, matfree_cold > 0.0 ? gram_cold / matfree_cold : 0.0,
      max_diff, labels_match ? "true" : "false");
  std::printf("BENCH %s\n", buffer);
  g_records.emplace_back(buffer);
}

void BenchConfig(std::size_t n_c, std::size_t m, bool labels_match,
                 kshape::harness::TablePrinter* table) {
  using namespace kshape;
  const std::vector<Series> members = MakeMembers(n_c, m, n_c * 61 + m);
  // The warm reference: the clean shape the members jitter around — exactly
  // the "previous centroid" situation of a settling k-Shape refinement loop.
  kshape::common::Rng ref_rng(5);
  const Series reference = tseries::ZNormalized(JitterSine(m, &ref_rng));

  core::ShapeExtractionOptions matfree_warm_opts;
  core::ShapeExtractionOptions gram_warm_opts;
  gram_warm_opts.use_matrix_free = false;
  core::ShapeExtractionOptions matfree_cold_opts;
  matfree_cold_opts.warm_start = false;
  core::ShapeExtractionOptions gram_cold_opts;
  gram_cold_opts.use_matrix_free = false;
  gram_cold_opts.warm_start = false;

  // Epsilon cross-check before any timing: the two paths see the members in
  // the same order and differ only in summation order inside the
  // eigenproblem.
  double max_diff = 0.0;
  {
    common::Rng rng_a(13);
    common::Rng rng_b(13);
    const Series via_pool =
        core::ExtractShape(members, reference, &rng_a, matfree_warm_opts);
    const Series via_gram =
        core::ExtractShape(members, reference, &rng_b, gram_warm_opts);
    for (std::size_t t = 0; t < m; ++t) {
      max_diff = std::max(max_diff, std::abs(via_pool[t] - via_gram[t]));
    }
    KSHAPE_CHECK_MSG(max_diff < 1e-4,
                     "matrix-free centroid diverged from the Gram path");
  }

  const int reps = g_smoke ? 1 : (n_c >= 5000 || m >= 1024 ? 2 : 3);
  const auto time_extract = [&](const core::ShapeExtractionOptions& options) {
    return TimeSeconds(reps, [&] {
      common::Rng rng(13);
      core::ExtractShape(members, reference, &rng, options);
    });
  };
  const double matfree_warm = time_extract(matfree_warm_opts);
  const double gram_warm = time_extract(gram_warm_opts);
  const double matfree_cold = time_extract(matfree_cold_opts);
  const double gram_cold = time_extract(gram_cold_opts);

  Record(n_c, m, gram_warm, matfree_warm, gram_cold, matfree_cold, max_diff,
         labels_match);
  table->AddRow({std::to_string(n_c), std::to_string(m),
                 harness::FormatDouble(gram_warm, 4),
                 harness::FormatDouble(matfree_warm, 4),
                 harness::FormatRatio(gram_warm / matfree_warm),
                 harness::FormatDouble(gram_cold, 4),
                 harness::FormatDouble(matfree_cold, 4),
                 harness::FormatRatio(gram_cold / matfree_cold)});
}

// Gate-parity acceptance on a clustering workload: identical labels and
// iteration counts with KSHAPE_MATFREE on vs off. Returns true on parity
// (and aborts the bench otherwise — this is the in-process assert).
bool CheckLabelParity() {
  using namespace kshape;
  const std::size_t n = g_smoke ? 120 : 300;
  const std::size_t m = 128;
  const int k = 4;
  common::Rng corpus_rng(71);
  std::vector<Series> series;
  for (std::size_t i = 0; i < n; ++i) {
    const double freq = static_cast<double>(2 * (i % k) + 1);
    const double phase = corpus_rng.Uniform() * kPhaseJitter;
    Series s(m);
    for (std::size_t t = 0; t < m; ++t) {
      s[t] = std::sin(2.0 * M_PI * freq * static_cast<double>(t) /
                          static_cast<double>(m) +
                      phase) +
             kNoiseSigma * corpus_rng.Gaussian();
    }
    series.push_back(tseries::ZNormalized(s));
  }

  const core::KShape algorithm;
  const bool saved = core::MatrixFreeEnabled();
  core::SetMatrixFreeEnabledForTesting(true);
  common::Rng rng_on(7);
  const cluster::ClusteringResult on = algorithm.Cluster(series, k, &rng_on);
  core::SetMatrixFreeEnabledForTesting(false);
  common::Rng rng_off(7);
  const cluster::ClusteringResult off = algorithm.Cluster(series, k, &rng_off);
  core::SetMatrixFreeEnabledForTesting(saved);

  const bool parity = on.assignments == off.assignments &&
                      on.iterations == off.iterations;
  KSHAPE_CHECK_MSG(parity,
                   "KSHAPE_MATFREE on/off label parity failed on the bench "
                   "corpus");
  std::printf(
      "label parity: KSHAPE_MATFREE on vs off — %zu labels identical, "
      "%d iterations both\n",
      on.assignments.size(), on.iterations);
  return parity;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;
  g_smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  std::printf(
      "shape_extraction: dispatched backend = %s (avx2 available: %s)\n",
      simd::ActiveBackendName(), simd::Avx2Available() ? "yes" : "no");

  const bool labels_match = CheckLabelParity();

  harness::PrintSection(std::cout,
                        "Shape extraction: Gram accumulation vs matrix-free "
                        "power iteration (single cluster, SBD-aligned "
                        "members)");
  harness::TablePrinter table({"n_c", "m", "Gram warm (s)", "MF warm (s)",
                               "Warm speedup", "Gram cold (s)", "MF cold (s)",
                               "Cold speedup"});

  const std::vector<std::size_t> cluster_sizes =
      g_smoke ? std::vector<std::size_t>{50, 500}
              : std::vector<std::size_t>{50, 500, 5000};
  const std::vector<std::size_t> lengths =
      g_smoke ? std::vector<std::size_t>{128}
              : std::vector<std::size_t>{128, 512, 1024};
  for (const std::size_t n_c : cluster_sizes) {
    for (const std::size_t m : lengths) {
      BenchConfig(n_c, m, labels_match, &table);
    }
  }
  table.Print(std::cout);
  std::cout << "(The matrix-free win is the skipped O(n_c*m^2) Gram "
               "accumulation plus the\nO(n_c*m)-per-step matvec; alignment "
               "— identical on both paths — is included,\nso these are "
               "end-to-end extraction-call timings. Warm starts need ~5-20\n"
               "power steps, where the Gram build dominates; the crossover "
               "below\nmatrix_free_min_members = "
            << core::ShapeExtractionOptions{}.matrix_free_min_members
            << " members routes tiny clusters back to the dense\npath "
               "bit-identically.)\n";

  std::ofstream json("BENCH_matfree.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    json << "  " << g_records[i] << (i + 1 < g_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_matfree.json (%zu records)\n", g_records.size());
  return 0;
}
