// Thread-scaling benchmark for the parallel execution layer: times each
// parallelized hot path at 1/2/4/8 threads and reports speedup vs the
// single-threaded run, one BENCH JSON line per (path, thread count) so the
// numbers are machine-parseable:
//
//   BENCH {"bench":"thread_scaling","path":"pairwise_sbd","n":200,"m":512,
//          "threads":4,"seconds":1.234,"speedup_vs_1":3.81}
//
// It also cross-checks the determinism guarantee: every path's result at
// every thread count must be bit-identical to the 1-thread reference (the
// binary aborts otherwise, so a regression cannot produce plausible-looking
// timings). On machines with fewer cores than threads the speedup saturates
// at the core count — the invariance checks still hold.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "classify/nearest_neighbor.h"
#include "cluster/kmedoids.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "harness/table.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

// SBD without the batched hooks, so PairwiseDistanceMatrix takes the generic
// per-pair loop — the uncached mode of the spectrum-cache comparison.
class UncachedSbd : public kshape::distance::DistanceMeasure {
 public:
  double Distance(kshape::tseries::SeriesView x,
                  kshape::tseries::SeriesView y) const override {
    return kshape::core::Sbd(x, y).distance;
  }
  std::string Name() const override { return "SBD_uncached"; }
};

std::vector<Series> MakeSeries(std::size_t n, std::size_t m, uint64_t seed) {
  kshape::common::Rng rng(seed);
  std::vector<Series> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return series;
}

kshape::tseries::Dataset MakeDataset(std::size_t n, std::size_t m,
                                     uint64_t seed) {
  kshape::common::Rng rng(seed);
  kshape::tseries::Dataset dataset("thread-scaling");
  for (std::size_t i = 0; i < n; ++i) {
    const int klass = static_cast<int>(i % 3);
    dataset.Add(kshape::tseries::ZNormalized(
                    kshape::data::MakeCbf(klass, m, &rng)),
                klass);
  }
  return dataset;
}

void EmitBenchLine(const char* path, std::size_t n, std::size_t m,
                   int threads, double seconds, double speedup) {
  std::printf(
      "BENCH {\"bench\":\"thread_scaling\",\"path\":\"%s\",\"n\":%zu,"
      "\"m\":%zu,\"threads\":%d,\"seconds\":%.6f,\"speedup_vs_1\":%.3f}\n",
      path, n, m, threads, seconds, speedup);
}

// Times `run` at each thread count; `run` returns a digest of its result,
// which must match the 1-thread reference exactly.
void BenchPath(const char* path, std::size_t n, std::size_t m,
               const std::function<std::vector<double>()>& run) {
  double baseline_seconds = 0.0;
  std::vector<double> reference;
  kshape::harness::TablePrinter table({"threads", "seconds", "speedup"});
  for (int threads : kThreadCounts) {
    kshape::common::SetThreadCount(threads);
    kshape::common::Stopwatch timer;
    const std::vector<double> digest = run();
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) {
      baseline_seconds = seconds;
      reference = digest;
    } else {
      KSHAPE_CHECK_MSG(digest == reference,
                       "thread-count invariance violated");
    }
    const double speedup = seconds > 0.0 ? baseline_seconds / seconds : 0.0;
    EmitBenchLine(path, n, m, threads, seconds, speedup);
    table.AddRow({std::to_string(threads),
                  kshape::harness::FormatDouble(seconds, 4),
                  kshape::harness::FormatRatio(speedup)});
  }
  table.Print(std::cout);
  kshape::common::SetThreadCount(1);
}

}  // namespace

int main() {
  using namespace kshape;

  std::printf("hardware_concurrency=%d KSHAPE_THREADS default=%d\n",
              static_cast<int>(std::thread::hardware_concurrency()),
              common::DefaultThreadCount());

  // The acceptance workload: symmetric pairwise SBD matrix, n=200, m=512.
  // Two modes: the default spectrum-cached engine and the per-pair fallback.
  {
    const std::vector<Series> series = MakeSeries(200, 512, 1);
    auto matrix_digest = [&](const distance::DistanceMeasure& measure) {
      const linalg::Matrix d = cluster::PairwiseDistanceMatrix(series,
                                                               measure);
      std::vector<double> digest;
      digest.reserve(d.rows() * d.cols());
      for (std::size_t i = 0; i < d.rows(); ++i) {
        for (std::size_t j = 0; j < d.cols(); ++j) digest.push_back(d(i, j));
      }
      return digest;
    };
    harness::PrintSection(
        std::cout, "Pairwise SBD distance matrix, cached (n=200, m=512)");
    const core::SbdDistance sbd;
    BenchPath("pairwise_sbd", 200, 512, [&] { return matrix_digest(sbd); });
    harness::PrintSection(
        std::cout, "Pairwise SBD distance matrix, uncached (n=200, m=512)");
    const UncachedSbd uncached_sbd;
    BenchPath("pairwise_sbd_uncached", 200, 512,
              [&] { return matrix_digest(uncached_sbd); });
  }

  // Full k-Shape run (++ seeding exercises the D^2 scans too), in both the
  // spectrum-cached and the per-pair ablation modes.
  {
    const std::vector<Series> series = MakeSeries(300, 256, 2);
    auto kshape_digest = [&](const core::KShape& algorithm) {
      common::Rng rng(7);
      const cluster::ClusteringResult result =
          algorithm.Cluster(series, 3, &rng);
      std::vector<double> digest;
      for (int a : result.assignments) digest.push_back(a);
      for (const Series& c : result.centroids) {
        digest.insert(digest.end(), c.begin(), c.end());
      }
      return digest;
    };
    core::KShapeOptions options;
    options.init = core::KShapeInit::kPlusPlusSeeding;
    const core::KShape algorithm(options);
    harness::PrintSection(
        std::cout, "k-Shape full run, ++ seeding, cached (n=300, m=256, k=3)");
    BenchPath("kshape_plusplus", 300, 256,
              [&] { return kshape_digest(algorithm); });
    core::KShapeOptions uncached_options = options;
    uncached_options.use_spectrum_cache = false;
    const core::KShape uncached_algorithm(uncached_options);
    harness::PrintSection(
        std::cout,
        "k-Shape full run, ++ seeding, uncached (n=300, m=256, k=3)");
    BenchPath("kshape_plusplus_uncached", 300, 256,
              [&] { return kshape_digest(uncached_algorithm); });
  }

  // Leave-one-out 1-NN under cDTW (the window-tuning inner loop).
  {
    harness::PrintSection(std::cout, "Leave-one-out 1-NN cDTW (n=150, m=256)");
    const tseries::Dataset data = MakeDataset(150, 256, 3);
    BenchPath("loo_cdtw_1nn", 150, 256, [&] {
      return std::vector<double>{
          classify::LeaveOneOutCdtwAccuracy(data, 12)};
    });
  }

  // 1-NN SBD accuracy over a train/test split.
  {
    harness::PrintSection(std::cout, "1-NN SBD accuracy (train=150, test=100, "
                                     "m=256)");
    const tseries::Dataset train = MakeDataset(150, 256, 4);
    const tseries::Dataset test = MakeDataset(100, 256, 5);
    const core::SbdDistance sbd;
    BenchPath("one_nn_sbd", 250, 256, [&] {
      return std::vector<double>{classify::OneNnAccuracy(train, test, sbd)};
    });
  }

  return 0;
}
