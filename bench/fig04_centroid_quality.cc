// Reproduces Figure 4 of the paper: per-class centroids of the ECG-like
// dataset computed with the arithmetic mean (the k-means way) vs with shape
// extraction (Algorithm 2). The paper's point is qualitative — the mean
// smears out-of-phase members while shape extraction preserves the class
// shape — so this bench quantifies it: the mean squared SBD from the
// centroid to the class members, and the peak sharpness of each centroid.

#include <cmath>
#include <iostream>

#include "common/random.h"
#include "core/shape_extraction.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "harness/table.h"
#include "linalg/matrix.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

double MeanSquaredSbd(const Series& centroid, const std::vector<Series>& members) {
  double total = 0.0;
  for (const Series& member : members) {
    const double d = kshape::core::Sbd(centroid, member).distance;
    total += d * d;
  }
  return total / static_cast<double>(members.size());
}

double PeakToSpread(const Series& x) {
  // Sharpness proxy: max |value| relative to the mean |value|.
  double peak = 0.0;
  double mean_abs = 0.0;
  for (double v : x) {
    peak = std::max(peak, std::fabs(v));
    mean_abs += std::fabs(v);
  }
  mean_abs /= static_cast<double>(x.size());
  return peak / (mean_abs > 0 ? mean_abs : 1.0);
}

}  // namespace

int main() {
  using namespace kshape;

  common::Rng rng(20150602);
  harness::PrintSection(std::cout,
                        "Figure 4: arithmetic-mean vs shape-extraction "
                        "centroids on ECG-like classes");
  harness::TablePrinter table({"Class", "Centroid", "Mean squared SBD",
                               "Peak/spread"});

  for (int klass = 0; klass < 2; ++klass) {
    std::vector<Series> members;
    for (int i = 0; i < 30; ++i) {
      members.push_back(
          tseries::ZNormalized(data::MakeEcgLike(klass, 136, &rng, 0.1)));
    }

    // Arithmetic-mean centroid (solid lines of Figure 4).
    Series mean(members[0].size(), 0.0);
    for (const Series& member : members) linalg::Axpy(1.0, member, &mean);
    linalg::Scale(&mean, 1.0 / static_cast<double>(members.size()));
    const Series mean_z = tseries::ZNormalized(mean);

    // Shape-extraction centroid (dashed lines of Figure 4), using a randomly
    // selected member as the reference sequence, as in the paper.
    const Series& reference =
        members[rng.UniformInt(static_cast<int>(members.size()))];
    const Series extracted = core::ExtractShape(members, reference, &rng);

    const std::string class_name = klass == 0 ? "A" : "B";
    table.AddRow({class_name, "arithmetic mean",
                  harness::FormatDouble(MeanSquaredSbd(mean_z, members), 4),
                  harness::FormatDouble(PeakToSpread(mean_z), 2)});
    table.AddRow({class_name, "shape extraction",
                  harness::FormatDouble(MeanSquaredSbd(extracted, members), 4),
                  harness::FormatDouble(PeakToSpread(extracted), 2)});
  }
  table.Print(std::cout);
  std::cout
      << "Lower mean squared SBD = the centroid represents the class better;\n"
         "higher peak/spread = the class transient survives in the centroid\n"
         "(the paper's Figure 4 shows the mean flattening it out).\n";
  return 0;
}
