// Reproduces Appendix B of the paper (Figure 12): runtime of k-Shape vs
// k-AVG+ED on the synthetic CBF dataset, (a) as a function of the number of
// time series n with m = 128 fixed, and (b) as a function of the series
// length m with n fixed. The paper's claims to check:
//   - both methods scale linearly in n (12a);
//   - k-Shape's cost grows superlinearly in m (the O(m^2)/O(m^3) refinement
//     terms) and eventually crosses k-AVG+ED (12b);
//   - accuracy does not degrade with scale for either method.
// Sizes are scaled to a single-core laptop run; the shape of the curves, not
// the absolute seconds, is the result.

#include <iostream>

#include "cluster/averaging.h"
#include "cluster/kmeans.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "data/generators.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

void MakeCbfData(int n, std::size_t m, uint64_t seed,
                 std::vector<Series>* series, std::vector<int>* labels) {
  kshape::common::Rng rng(seed);
  series->clear();
  labels->clear();
  for (int i = 0; i < n; ++i) {
    const int klass = i % 3;
    series->push_back(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(klass, m, &rng)));
    labels->push_back(klass);
  }
}

}  // namespace

int main() {
  using namespace kshape;

  const distance::EuclideanDistance ed;
  const cluster::ArithmeticMeanAveraging mean_avg;
  const cluster::KMeans k_avg_ed(&ed, &mean_avg, "k-AVG+ED");
  const core::KShape kshape;
  // Ablation column: the identical algorithm with the spectrum cache off,
  // paying two forward transforms inside every assignment distance.
  core::KShapeOptions no_cache_options;
  no_cache_options.use_spectrum_cache = false;
  const core::KShape kshape_no_cache(no_cache_options);

  auto run_one = [&](const cluster::ClusteringAlgorithm& algorithm,
                     const std::vector<Series>& series,
                     const std::vector<int>& labels, double* seconds,
                     double* rand_index) {
    common::Rng rng(99);
    common::Stopwatch timer;
    const cluster::ClusteringResult result = algorithm.Cluster(series, 3, &rng);
    *seconds = timer.ElapsedSeconds();
    *rand_index = eval::RandIndex(labels, result.assignments);
  };

  harness::PrintSection(std::cout,
                        "Figure 12a: runtime vs number of series n "
                        "(CBF, m = 128, k = 3)");
  {
    harness::TablePrinter table({"n", "k-AVG+ED (s)", "k-Shape (s)",
                                 "k-Shape no-cache (s)", "k-AVG+ED Rand",
                                 "k-Shape Rand"});
    std::vector<Series> series;
    std::vector<int> labels;
    for (int n : {300, 600, 1200, 2400}) {
      MakeCbfData(n, 128, 1, &series, &labels);
      double ed_seconds, ed_rand, ks_seconds, ks_rand;
      double nc_seconds, nc_rand;
      run_one(k_avg_ed, series, labels, &ed_seconds, &ed_rand);
      run_one(kshape, series, labels, &ks_seconds, &ks_rand);
      run_one(kshape_no_cache, series, labels, &nc_seconds, &nc_rand);
      table.AddRow({std::to_string(n), harness::FormatDouble(ed_seconds, 3),
                    harness::FormatDouble(ks_seconds, 3),
                    harness::FormatDouble(nc_seconds, 3),
                    harness::FormatDouble(ed_rand, 3),
                    harness::FormatDouble(ks_rand, 3)});
    }
    table.Print(std::cout);
    std::cout << "(Linear growth in n for both methods, per §3.3.)\n";
  }

  harness::PrintSection(std::cout,
                        "Figure 12b: runtime vs series length m "
                        "(CBF, n = 300, k = 3)");
  {
    harness::TablePrinter table({"m", "k-AVG+ED (s)", "k-Shape (s)",
                                 "k-Shape no-cache (s)", "k-AVG+ED Rand",
                                 "k-Shape Rand"});
    std::vector<Series> series;
    std::vector<int> labels;
    for (std::size_t m : {64, 128, 256, 512, 1024}) {
      MakeCbfData(300, m, 2, &series, &labels);
      double ed_seconds, ed_rand, ks_seconds, ks_rand;
      double nc_seconds, nc_rand;
      run_one(k_avg_ed, series, labels, &ed_seconds, &ed_rand);
      run_one(kshape, series, labels, &ks_seconds, &ks_rand);
      run_one(kshape_no_cache, series, labels, &nc_seconds, &nc_rand);
      table.AddRow({std::to_string(m), harness::FormatDouble(ed_seconds, 3),
                    harness::FormatDouble(ks_seconds, 3),
                    harness::FormatDouble(nc_seconds, 3),
                    harness::FormatDouble(ed_rand, 3),
                    harness::FormatDouble(ks_rand, 3)});
    }
    table.Print(std::cout);
    std::cout << "(k-Shape's dependence on m is superlinear — the m^2/m^3 "
                 "refinement terms of §3.3 — matching Figure 12b.)\n";
  }
  return 0;
}
