// Reproduces Appendix B of the paper (Figure 12): runtime of k-Shape vs
// k-AVG+ED on the synthetic CBF dataset, (a) as a function of the number of
// time series n with m = 128 fixed, and (b) as a function of the series
// length m with n fixed. The paper's claims to check:
//   - both methods scale linearly in n (12a);
//   - k-Shape's cost grows superlinearly in m (the O(m^2)/O(m^3) refinement
//     terms) and eventually crosses k-AVG+ED (12b);
//   - accuracy does not degrade with scale for either method.
// Sizes are scaled to a single-core laptop run; the shape of the curves, not
// the absolute seconds, is the result.
//
// Sharded mode (--sharded): the out-of-core extension of 12a, pushing n into
// the 10^5-10^6 regime the in-memory batch cannot (or should not) hold. The
// CBF corpus is generated straight into a store::ShardedSeriesStore (never
// materialized in memory), then clustered by the mini-batch sharded driver
// (cluster::MiniBatchKShape) under a fixed residency budget, with an
// exact-mode sharded reference at the smallest size. One BENCH JSON line per
// configuration:
//
//   BENCH {"bench":"fig12_sharded","workload":"minibatch_kshape","n":100000,
//          "m":128,"k":3,"shard_rows":8192,"max_resident_shards":4,
//          "minibatch":4096,"seconds":12.3,"rand":0.91,"ari":0.80,
//          "iterations":15,"converged":false,"shards_loaded":52,
//          "shard_evictions":48,"sampled_series":49152,
//          "resident_bound_ok":true}
//
// Records also land in BENCH_sharded.json (a JSON array) for CI. The
// residency bound is asserted, not just reported: the run aborts if the
// store ever ends up holding more shards than its budget. Flags compose:
// `--sharded --smoke` is the CI leg (n = 20000), `--sharded` the default
// sweep (n = 100000, 250000), `--sharded --xl` adds n = 1000000.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/averaging.h"
#include "cluster/kmeans.h"
#include "cluster/minibatch_kshape.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "data/generators.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "store/sharded_store.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

void MakeCbfData(int n, std::size_t m, uint64_t seed,
                 std::vector<Series>* series, std::vector<int>* labels) {
  kshape::common::Rng rng(seed);
  series->clear();
  labels->clear();
  for (int i = 0; i < n; ++i) {
    const int klass = i % 3;
    series->push_back(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(klass, m, &rng)));
    labels->push_back(klass);
  }
}

// ---------------------------------------------------------------------------
// Sharded out-of-core mode.
// ---------------------------------------------------------------------------

std::vector<std::string> g_sharded_records;

struct ShardedRunResult {
  double seconds = 0.0;
  double rand_index = 0.0;
  double ari = 0.0;
  kshape::cluster::ClusteringResult clustering;
};

// Generates the CBF corpus row by row straight into a sharded store at
// `directory` — the corpus never exists as one in-memory batch, which is the
// point of the 10^5-10^6 regime.
kshape::store::ShardedSeriesStore GenerateShardedCbf(
    const std::string& directory, std::size_t n, std::size_t m, uint64_t seed,
    const kshape::core::KShapeOptions& options, std::vector<int>* labels) {
  namespace fs = std::filesystem;
  fs::remove_all(directory);
  kshape::store::ShardedStoreOptions store_options;
  store_options.shard_rows = options.shard_rows;
  store_options.max_resident_shards = options.max_resident_shards;
  auto created =
      kshape::store::ShardedSeriesStore::Create(directory, store_options);
  KSHAPE_CHECK_MSG(created.ok(), "cannot create sharded store");
  kshape::store::ShardedSeriesStore store = std::move(created).value();

  kshape::common::Rng rng(seed);
  labels->clear();
  labels->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int klass = static_cast<int>(i % 3);
    store.Append(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(klass, m, &rng)));
    labels->push_back(klass);
  }
  KSHAPE_CHECK(store.Seal().ok());
  return store;
}

ShardedRunResult RunSharded(kshape::store::ShardedSeriesStore* store,
                            const kshape::core::KShapeOptions& options,
                            int k, const std::vector<int>& labels) {
  const kshape::cluster::MiniBatchKShape driver(options);
  kshape::common::Rng rng(99);
  ShardedRunResult out;
  kshape::common::Stopwatch timer;
  out.clustering = driver.Cluster(store, k, &rng);
  out.seconds = timer.ElapsedSeconds();
  // The residency budget is the bench's contract, not a best-effort hint.
  KSHAPE_CHECK_MSG(store->resident_count() <= store->max_resident_shards(),
                   "residency budget exceeded");
  out.rand_index = kshape::eval::RandIndex(labels, out.clustering.assignments);
  out.ari =
      kshape::eval::AdjustedRandIndex(labels, out.clustering.assignments);
  return out;
}

void RecordSharded(std::size_t n, std::size_t m, int k,
                   const kshape::core::KShapeOptions& options,
                   const ShardedRunResult& run) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"fig12_sharded\",\"workload\":\"minibatch_kshape\","
      "\"n\":%zu,\"m\":%zu,\"k\":%d,\"shard_rows\":%zu,"
      "\"max_resident_shards\":%zu,\"minibatch\":%zu,\"seconds\":%.3f,"
      "\"rand\":%.4f,\"ari\":%.4f,\"iterations\":%d,\"converged\":%s,"
      "\"shards_loaded\":%lld,\"shard_evictions\":%lld,"
      "\"sampled_series\":%lld,\"resident_bound_ok\":true}",
      n, m, k, options.shard_rows, options.max_resident_shards,
      options.minibatch_size, run.seconds, run.rand_index, run.ari,
      run.clustering.iterations, run.clustering.converged ? "true" : "false",
      run.clustering.shards_loaded, run.clustering.shard_evictions,
      run.clustering.sampled_series);
  std::printf("BENCH %s\n", buffer);
  g_sharded_records.emplace_back(buffer);
}

int RunShardedMode(bool smoke, bool xl) {
  using namespace kshape;
  namespace fs = std::filesystem;

  const std::size_t m = 128;
  const int k = 3;
  std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{20000}
            : std::vector<std::size_t>{100000, 250000};
  if (xl) sizes.push_back(1000000);

  harness::PrintSection(
      std::cout,
      "Sharded out-of-core mini-batch k-Shape (CBF, m = 128, k = 3)");
  harness::TablePrinter table({"n", "mode", "seconds", "Rand", "ARI",
                               "iters", "loads", "evicts", "sampled"});

  core::KShapeOptions options;
  options.shard_rows = 8192;
  options.max_resident_shards = 4;
  options.minibatch_size = 4096;
  options.refresh_period = 5;
  options.max_iterations = 15;

  const std::string dir_base =
      (fs::temp_directory_path() / "kshape_fig12_shards").string();
  bool first = true;
  for (const std::size_t n : sizes) {
    const std::string dir = dir_base + "_" + std::to_string(n);
    std::vector<int> labels;
    store::ShardedSeriesStore store =
        GenerateShardedCbf(dir, n, m, /*seed=*/1, options, &labels);
    std::printf("n=%zu: %zu shards on disk, residency budget %zu\n", n,
                store.num_shards(), store.max_resident_shards());

    if (first) {
      // Exact-mode sharded reference at the smallest size: every iteration
      // a full pass, so the mini-batch rows below have a quality anchor.
      core::KShapeOptions exact = options;
      exact.minibatch_size = 0;
      const ShardedRunResult run = RunSharded(&store, exact, k, labels);
      KSHAPE_CHECK(run.clustering.sampled_series == 0);
      RecordSharded(n, m, k, exact, run);
      table.AddRow({std::to_string(n), "exact",
                    harness::FormatDouble(run.seconds, 2),
                    harness::FormatDouble(run.rand_index, 3),
                    harness::FormatDouble(run.ari, 3),
                    std::to_string(run.clustering.iterations),
                    std::to_string(run.clustering.shards_loaded),
                    std::to_string(run.clustering.shard_evictions),
                    std::to_string(run.clustering.sampled_series)});
      first = false;
    }

    const ShardedRunResult run = RunSharded(&store, options, k, labels);
    RecordSharded(n, m, k, options, run);
    table.AddRow({std::to_string(n), "minibatch",
                  harness::FormatDouble(run.seconds, 2),
                  harness::FormatDouble(run.rand_index, 3),
                  harness::FormatDouble(run.ari, 3),
                  std::to_string(run.clustering.iterations),
                  std::to_string(run.clustering.shards_loaded),
                  std::to_string(run.clustering.shard_evictions),
                  std::to_string(run.clustering.sampled_series)});

    // The biggest corpus is ~1 GB on disk; don't leave it behind.
    fs::remove_all(dir);
  }
  table.Print(std::cout);
  std::cout << "(Peak resident sample memory is bounded by "
               "max_resident_shards * shard_rows * m * 8 bytes — "
            << (options.max_resident_shards * options.shard_rows * m * 8) /
                   (1024 * 1024)
            << " MiB here — independent of n.)\n";

  std::ofstream json("BENCH_sharded.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_sharded_records.size(); ++i) {
    json << "  " << g_sharded_records[i]
         << (i + 1 < g_sharded_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_sharded.json (%zu records)\n",
              g_sharded_records.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;

  bool sharded = false, smoke = false, xl = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--sharded") sharded = true;
    if (arg == "--smoke") smoke = true;
    if (arg == "--xl") xl = true;
  }
  if (sharded) return RunShardedMode(smoke, xl);

  const distance::EuclideanDistance ed;
  const cluster::ArithmeticMeanAveraging mean_avg;
  const cluster::KMeans k_avg_ed(&ed, &mean_avg, "k-AVG+ED");
  const core::KShape kshape;
  // Ablation column: the identical algorithm with the spectrum cache off,
  // paying two forward transforms inside every assignment distance.
  core::KShapeOptions no_cache_options;
  no_cache_options.use_spectrum_cache = false;
  const core::KShape kshape_no_cache(no_cache_options);

  // Phase telemetry (extract/assign, monotonic clock summed across
  // iterations) is reported for the cached k-Shape runs: it splits the total
  // into the two refinement phases of Algorithm 1, which scale differently
  // in m (the matrix-free extraction is near-linear, the NCC assignment
  // carries the m log m transforms).
  auto run_one = [&](const cluster::ClusteringAlgorithm& algorithm,
                     const std::vector<Series>& series,
                     const std::vector<int>& labels, double* seconds,
                     double* rand_index, double* extract_seconds = nullptr,
                     double* assign_seconds = nullptr) {
    common::Rng rng(99);
    common::Stopwatch timer;
    const cluster::ClusteringResult result = algorithm.Cluster(series, 3, &rng);
    *seconds = timer.ElapsedSeconds();
    *rand_index = eval::RandIndex(labels, result.assignments);
    if (extract_seconds != nullptr) {
      *extract_seconds = result.extraction_seconds;
    }
    if (assign_seconds != nullptr) *assign_seconds = result.assignment_seconds;
  };

  harness::PrintSection(std::cout,
                        "Figure 12a: runtime vs number of series n "
                        "(CBF, m = 128, k = 3)");
  {
    harness::TablePrinter table({"n", "k-AVG+ED (s)", "k-Shape (s)",
                                 "kS extract (s)", "kS assign (s)",
                                 "k-Shape no-cache (s)", "k-AVG+ED Rand",
                                 "k-Shape Rand"});
    std::vector<Series> series;
    std::vector<int> labels;
    for (int n : {300, 600, 1200, 2400}) {
      MakeCbfData(n, 128, 1, &series, &labels);
      double ed_seconds, ed_rand, ks_seconds, ks_rand;
      double ks_extract, ks_assign;
      double nc_seconds, nc_rand;
      run_one(k_avg_ed, series, labels, &ed_seconds, &ed_rand);
      run_one(kshape, series, labels, &ks_seconds, &ks_rand, &ks_extract,
              &ks_assign);
      run_one(kshape_no_cache, series, labels, &nc_seconds, &nc_rand);
      table.AddRow({std::to_string(n), harness::FormatDouble(ed_seconds, 3),
                    harness::FormatDouble(ks_seconds, 3),
                    harness::FormatDouble(ks_extract, 3),
                    harness::FormatDouble(ks_assign, 3),
                    harness::FormatDouble(nc_seconds, 3),
                    harness::FormatDouble(ed_rand, 3),
                    harness::FormatDouble(ks_rand, 3)});
    }
    table.Print(std::cout);
    std::cout << "(Linear growth in n for both methods, per §3.3 — and in "
                 "both k-Shape phases\nseparately.)\n";
  }

  harness::PrintSection(std::cout,
                        "Figure 12b: runtime vs series length m "
                        "(CBF, n = 300, k = 3)");
  {
    harness::TablePrinter table({"m", "k-AVG+ED (s)", "k-Shape (s)",
                                 "kS extract (s)", "kS assign (s)",
                                 "k-Shape no-cache (s)", "k-AVG+ED Rand",
                                 "k-Shape Rand"});
    std::vector<Series> series;
    std::vector<int> labels;
    for (std::size_t m : {64, 128, 256, 512, 1024}) {
      MakeCbfData(300, m, 2, &series, &labels);
      double ed_seconds, ed_rand, ks_seconds, ks_rand;
      double ks_extract, ks_assign;
      double nc_seconds, nc_rand;
      run_one(k_avg_ed, series, labels, &ed_seconds, &ed_rand);
      run_one(kshape, series, labels, &ks_seconds, &ks_rand, &ks_extract,
              &ks_assign);
      run_one(kshape_no_cache, series, labels, &nc_seconds, &nc_rand);
      table.AddRow({std::to_string(m), harness::FormatDouble(ed_seconds, 3),
                    harness::FormatDouble(ks_seconds, 3),
                    harness::FormatDouble(ks_extract, 3),
                    harness::FormatDouble(ks_assign, 3),
                    harness::FormatDouble(nc_seconds, 3),
                    harness::FormatDouble(ed_rand, 3),
                    harness::FormatDouble(ks_rand, 3)});
    }
    table.Print(std::cout);
    std::cout << "(k-Shape's dependence on m is superlinear — the m^2/m^3 "
                 "refinement terms of §3.3\n— matching Figure 12b; the phase "
                 "split shows the assignment transforms, not the\nmatrix-free "
                 "extraction, carrying the growth.)\n";
  }
  return 0;
}
