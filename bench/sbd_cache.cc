// Cached-vs-uncached SBD benchmark for the spectrum-cache engine: times every
// consumer of the cache (pairwise distance matrix, full k-Shape, 1-NN
// classification) against the per-pair Sbd() path at the same thread count,
// and cross-checks that the two paths agree within the documented tolerance.
// One BENCH JSON line per (workload, thread count):
//
//   BENCH {"bench":"sbd_cache","workload":"pairwise_matrix","impl":"fft",
//          "n":200,"m":512,"threads":1,"uncached_seconds":2.416,
//          "cached_seconds":0.913,"speedup":2.65}
//
// The same records are also written to BENCH_sbd_cache.json (a JSON array) in
// the working directory for CI consumption. The acceptance bar for this
// bench: >= 2x on the pairwise matrix workload (n >= 200, m >= 256).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "classify/nearest_neighbor.h"
#include "cluster/kmedoids.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "harness/table.h"
#include "linalg/matrix.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

constexpr int kThreadCounts[] = {1, 4};

// SBD without the batched hooks: Distance() is the same per-pair Sbd() call,
// but PairwiseDistanceMatrix and the accuracy loops see no batch support and
// fall back to their generic paths — the pre-cache behavior.
class UncachedSbd : public kshape::distance::DistanceMeasure {
 public:
  explicit UncachedSbd(
      kshape::core::CrossCorrelationImpl impl =
          kshape::core::CrossCorrelationImpl::kFft)
      : impl_(impl) {}

  double Distance(kshape::tseries::SeriesView x,
                  kshape::tseries::SeriesView y) const override {
    return kshape::core::Sbd(x, y, impl_).distance;
  }

  std::string Name() const override { return "SBD_uncached"; }

 private:
  kshape::core::CrossCorrelationImpl impl_;
};

std::vector<Series> MakeSeries(std::size_t n, std::size_t m, uint64_t seed) {
  kshape::common::Rng rng(seed);
  std::vector<Series> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return series;
}

kshape::tseries::Dataset MakeDataset(std::size_t n, std::size_t m,
                                     uint64_t seed) {
  kshape::common::Rng rng(seed);
  kshape::tseries::Dataset dataset("sbd-cache");
  for (std::size_t i = 0; i < n; ++i) {
    const int klass = static_cast<int>(i % 3);
    dataset.Add(kshape::tseries::ZNormalized(
                    kshape::data::MakeCbf(klass, m, &rng)),
                klass);
  }
  return dataset;
}

// Collected records, serialized to BENCH_sbd_cache.json at exit.
std::vector<std::string> g_records;

void Record(const char* workload, const char* impl, std::size_t n,
            std::size_t m, int threads, double uncached_seconds,
            double cached_seconds) {
  const double speedup =
      cached_seconds > 0.0 ? uncached_seconds / cached_seconds : 0.0;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"sbd_cache\",\"workload\":\"%s\",\"impl\":\"%s\","
      "\"n\":%zu,\"m\":%zu,\"threads\":%d,\"uncached_seconds\":%.6f,"
      "\"cached_seconds\":%.6f,\"speedup\":%.3f}",
      workload, impl, n, m, threads, uncached_seconds, cached_seconds,
      speedup);
  std::printf("BENCH %s\n", buffer);
  g_records.emplace_back(buffer);
}

double TimeSeconds(const std::function<void()>& run) {
  kshape::common::Stopwatch timer;
  run();
  return timer.ElapsedSeconds();
}

double MaxAbsDiff(const kshape::linalg::Matrix& a,
                  const kshape::linalg::Matrix& b) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      max_diff = std::max(max_diff, std::abs(a(i, j) - b(i, j)));
    }
  }
  return max_diff;
}

void BenchPairwise(const char* workload, const char* impl_name,
                   kshape::core::CrossCorrelationImpl impl, std::size_t n,
                   std::size_t m) {
  using namespace kshape;
  harness::PrintSection(
      std::cout, std::string("Pairwise SBD matrix (") + workload + ", n=" +
                     std::to_string(n) + ", m=" + std::to_string(m) + ")");
  const std::vector<Series> series = MakeSeries(n, m, 1);
  const UncachedSbd uncached(impl);
  const core::SbdDistance cached(impl);

  // Equivalence first: the two paths must agree within the documented
  // tolerance (epsilon, not bitwise — the packed transform rounds
  // differently from the cached per-series transforms).
  common::SetThreadCount(1);
  const linalg::Matrix reference =
      cluster::PairwiseDistanceMatrix(series, uncached);
  const linalg::Matrix cached_matrix =
      cluster::PairwiseDistanceMatrix(series, cached);
  const double max_diff = MaxAbsDiff(reference, cached_matrix);
  std::printf("max |cached - uncached| = %.3e\n", max_diff);
  KSHAPE_CHECK_MSG(max_diff < 1e-8, "cached matrix disagrees with direct SBD");

  harness::TablePrinter table(
      {"threads", "uncached (s)", "cached (s)", "speedup"});
  for (int threads : kThreadCounts) {
    common::SetThreadCount(threads);
    const double uncached_seconds = TimeSeconds(
        [&] { cluster::PairwiseDistanceMatrix(series, uncached); });
    const double cached_seconds =
        TimeSeconds([&] { cluster::PairwiseDistanceMatrix(series, cached); });
    Record(workload, impl_name, n, m, threads, uncached_seconds,
           cached_seconds);
    table.AddRow({std::to_string(threads),
                  harness::FormatDouble(uncached_seconds, 4),
                  harness::FormatDouble(cached_seconds, 4),
                  harness::FormatRatio(uncached_seconds / cached_seconds)});
  }
  table.Print(std::cout);
  kshape::common::SetThreadCount(1);
}

}  // namespace

int main() {
  using namespace kshape;

  // The acceptance workload: n=200 series of length m=512 (power-of-two FFT
  // length), then a Bluestein configuration (fft_len = 2m-1 = 767, not a
  // power of two) to show the chirp-z path benefits too.
  BenchPairwise("pairwise_matrix", "fft", core::CrossCorrelationImpl::kFft,
                200, 512);
  BenchPairwise("pairwise_matrix_bluestein", "fft_no_pow2",
                core::CrossCorrelationImpl::kFftNoPow2, 120, 384);

  // Full k-Shape: series spectra once per call, centroid spectra once per
  // iteration. The ablation flag switches the identical algorithm back to
  // per-pair Sbd().
  {
    constexpr std::size_t n = 300;
    constexpr std::size_t m = 256;
    harness::PrintSection(std::cout,
                          "k-Shape full run, ++ seeding (n=300, m=256, k=3)");
    const std::vector<Series> series = MakeSeries(n, m, 2);
    core::KShapeOptions cached_options;
    cached_options.init = core::KShapeInit::kPlusPlusSeeding;
    core::KShapeOptions uncached_options = cached_options;
    uncached_options.use_spectrum_cache = false;
    const core::KShape cached_kshape(cached_options);
    const core::KShape uncached_kshape(uncached_options);

    auto run = [&](const core::KShape& algorithm) {
      common::Rng rng(7);
      return algorithm.Cluster(series, 3, &rng);
    };
    const cluster::ClusteringResult reference = run(uncached_kshape);
    const cluster::ClusteringResult cached_result = run(cached_kshape);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < n; ++i) {
      agree += reference.assignments[i] == cached_result.assignments[i];
    }
    std::printf("assignment agreement: %zu/%zu\n", agree, n);
    KSHAPE_CHECK_MSG(agree == n, "cached k-Shape changed the clustering");

    harness::TablePrinter table(
        {"threads", "uncached (s)", "cached (s)", "speedup"});
    for (int threads : kThreadCounts) {
      common::SetThreadCount(threads);
      const double uncached_seconds =
          TimeSeconds([&] { run(uncached_kshape); });
      const double cached_seconds = TimeSeconds([&] { run(cached_kshape); });
      Record("kshape_plusplus", "fft", n, m, threads, uncached_seconds,
             cached_seconds);
      table.AddRow({std::to_string(threads),
                    harness::FormatDouble(uncached_seconds, 4),
                    harness::FormatDouble(cached_seconds, 4),
                    harness::FormatRatio(uncached_seconds / cached_seconds)});
    }
    table.Print(std::cout);
    common::SetThreadCount(1);
  }

  // 1-NN SBD accuracy: training spectra once per call via the batch scanner.
  {
    constexpr std::size_t n_train = 150;
    constexpr std::size_t n_test = 100;
    constexpr std::size_t m = 256;
    harness::PrintSection(
        std::cout, "1-NN SBD accuracy (train=150, test=100, m=256)");
    const tseries::Dataset train = MakeDataset(n_train, m, 4);
    const tseries::Dataset test = MakeDataset(n_test, m, 5);
    const UncachedSbd uncached;
    const core::SbdDistance cached;

    common::SetThreadCount(1);
    const double reference_accuracy =
        classify::OneNnAccuracy(train, test, uncached);
    const double cached_accuracy =
        classify::OneNnAccuracy(train, test, cached);
    std::printf("accuracy: uncached=%.4f cached=%.4f\n", reference_accuracy,
                cached_accuracy);
    KSHAPE_CHECK_MSG(reference_accuracy == cached_accuracy,
                     "cached 1-NN changed predictions");

    harness::TablePrinter table(
        {"threads", "uncached (s)", "cached (s)", "speedup"});
    for (int threads : kThreadCounts) {
      common::SetThreadCount(threads);
      const double uncached_seconds = TimeSeconds(
          [&] { classify::OneNnAccuracy(train, test, uncached); });
      const double cached_seconds =
          TimeSeconds([&] { classify::OneNnAccuracy(train, test, cached); });
      Record("one_nn_sbd", "fft", n_train + n_test, m, threads,
             uncached_seconds, cached_seconds);
      table.AddRow({std::to_string(threads),
                    harness::FormatDouble(uncached_seconds, 4),
                    harness::FormatDouble(cached_seconds, 4),
                    harness::FormatRatio(uncached_seconds / cached_seconds)});
    }
    table.Print(std::cout);
    common::SetThreadCount(1);
  }

  std::ofstream json("BENCH_sbd_cache.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    json << "  " << g_records[i] << (i + 1 < g_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_sbd_cache.json (%zu records)\n", g_records.size());
  return 0;
}
