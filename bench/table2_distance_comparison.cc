// Reproduces Table 2 of the paper (1-NN classification accuracy of distance
// measures vs the ED baseline, with runtime factors), plus the data behind
// Figure 5 (per-dataset scatter of SBD vs ED and SBD vs DTW) and Figure 6
// (average ranks of ED, SBD, cDTW5, cDTW_opt with Friedman + Nemenyi).
//
// Protocol (§4): per dataset, 1-NN accuracy over the train/test split; the
// cDTW_opt window is tuned by leave-one-out over the training set; runtimes
// are reported as factors relative to ED. The "*_LB" rows rerun the cDTW/DTW
// searches with LB_Keogh pruning — identical predictions, lower runtime.

#include <iostream>
#include <memory>

#include "classify/nearest_neighbor.h"
#include "common/stopwatch.h"
#include "core/sbd.h"
#include "data/archive.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "harness/experiments.h"
#include "harness/table.h"

namespace {

using kshape::classify::OneNnAccuracy;
using kshape::classify::OneNnAccuracyCdtwLb;
using kshape::harness::MethodScores;

}  // namespace

int main() {
  using namespace kshape;

  data::ArchiveOptions archive_options;
  const auto archive = data::MakeSyntheticArchive(archive_options);
  std::vector<std::string> dataset_names;
  for (const auto& split : archive) dataset_names.push_back(split.name());

  const distance::EuclideanDistance ed;
  const dtw::DtwMeasure dtw_full = dtw::DtwMeasure::Unconstrained();
  const dtw::DtwMeasure cdtw5 = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");
  const dtw::DtwMeasure cdtw10 = dtw::DtwMeasure::SakoeChiba(0.10, "cDTW10");
  const core::SbdDistance sbd(core::CrossCorrelationImpl::kFft);
  const core::SbdDistance sbd_nopow2(core::CrossCorrelationImpl::kFftNoPow2);
  const core::SbdDistance sbd_nofft(core::CrossCorrelationImpl::kNaive);

  MethodScores ed_scores{"ED", {}, 0.0};
  MethodScores dtw_scores{"DTW", {}, 0.0};
  MethodScores dtw_lb_scores{"DTW_LB", {}, 0.0};
  MethodScores cdtwopt_scores{"cDTWopt", {}, 0.0};
  MethodScores cdtwopt_lb_scores{"cDTWopt_LB", {}, 0.0};
  MethodScores cdtw5_scores{"cDTW5", {}, 0.0};
  MethodScores cdtw5_lb_scores{"cDTW5_LB", {}, 0.0};
  MethodScores cdtw10_scores{"cDTW10", {}, 0.0};
  MethodScores cdtw10_lb_scores{"cDTW10_LB", {}, 0.0};
  MethodScores sbd_scores{"SBD", {}, 0.0};
  MethodScores sbd_nopow2_scores{"SBD_NoPow2", {}, 0.0};
  MethodScores sbd_nofft_scores{"SBD_NoFFT", {}, 0.0};

  double tuning_seconds = 0.0;

  auto run_measure = [&](MethodScores* out, const tseries::SplitDataset& split,
                         const distance::DistanceMeasure& measure) {
    common::Stopwatch timer;
    out->scores.push_back(OneNnAccuracy(split.train, split.test, measure));
    out->total_seconds += timer.ElapsedSeconds();
  };
  auto run_lb = [&](MethodScores* out, const tseries::SplitDataset& split,
                    int window) {
    common::Stopwatch timer;
    out->scores.push_back(
        OneNnAccuracyCdtwLb(split.train, split.test, window));
    out->total_seconds += timer.ElapsedSeconds();
  };

  for (const auto& split : archive) {
    const std::size_t m = split.train.length();

    run_measure(&ed_scores, split, ed);
    run_measure(&sbd_scores, split, sbd);
    run_measure(&sbd_nopow2_scores, split, sbd_nopow2);
    run_measure(&sbd_nofft_scores, split, sbd_nofft);
    run_measure(&dtw_scores, split, dtw_full);
    run_measure(&cdtw5_scores, split, cdtw5);
    run_measure(&cdtw10_scores, split, cdtw10);

    // cDTW_opt: leave-one-out window tuning over the training set (§4).
    common::Stopwatch tuning_timer;
    const int opt_window = classify::TuneCdtwWindowLoo(
        split.train, classify::DefaultWindowFractions());
    tuning_seconds += tuning_timer.ElapsedSeconds();
    {
      common::Stopwatch timer;
      const dtw::DtwMeasure cdtw_opt =
          dtw::DtwMeasure::FixedWindow(opt_window, "cDTWopt");
      cdtwopt_scores.scores.push_back(
          OneNnAccuracy(split.train, split.test, cdtw_opt));
      cdtwopt_scores.total_seconds += timer.ElapsedSeconds();
    }

    // LB_Keogh-pruned searches (identical accuracy, lower cost).
    run_lb(&dtw_lb_scores, split, static_cast<int>(m) - 1);
    run_lb(&cdtwopt_lb_scores, split, opt_window);
    run_lb(&cdtw5_lb_scores, split, dtw::WindowFromFraction(0.05, m));
    run_lb(&cdtw10_lb_scores, split, dtw::WindowFromFraction(0.10, m));
  }

  harness::PrintSection(std::cout,
                        "Table 2: 1-NN accuracy of distance measures vs ED "
                        "(synthetic archive, " +
                            std::to_string(archive.size()) + " datasets)");
  harness::PrintComparisonTable(ed_scores,
                       {dtw_scores, dtw_lb_scores, cdtwopt_scores,
                        cdtwopt_lb_scores, cdtw5_scores, cdtw5_lb_scores,
                        cdtw10_scores, cdtw10_lb_scores, sbd_nofft_scores,
                        sbd_nopow2_scores, sbd_scores},
                       "Accuracy", 0.01, std::cout);
  std::cout << "(cDTWopt leave-one-out tuning cost, excluded from its row: "
            << harness::FormatDouble(tuning_seconds, 2) << " s vs ED total "
            << harness::FormatDouble(ed_scores.total_seconds, 2) << " s)\n";

  harness::PrintSection(std::cout,
                        "Figure 5a: per-dataset accuracy, SBD vs ED");
  harness::PrintScatterPairs(ed_scores, sbd_scores, dataset_names, std::cout);

  harness::PrintSection(std::cout,
                        "Figure 5b: per-dataset accuracy, SBD vs DTW");
  harness::PrintScatterPairs(dtw_scores, sbd_scores, dataset_names, std::cout);

  harness::PrintSection(
      std::cout,
      "Figure 6: average ranks of distance measures (Friedman + Nemenyi)");
  harness::PrintAverageRanks({cdtwopt_scores, cdtw5_scores, sbd_scores, ed_scores},
                    std::cout);
  return 0;
}
