// Reproduces Figure 3 of the paper: how data and cross-correlation
// normalizations affect the produced NCC sequence. Two aligned sequences of
// length m = 1024 are compared; the peak position of the NCC sequence
// (index 1024 in the paper's 1-based convention = zero shift) shows whether
// the normalization correctly reports "no shifting required":
//   (a) NCCb without z-normalization  -> peak far from zero shift (wrong)
//   (b) NCCu with z-normalization     -> peak away from zero shift (wrong)
//   (c) NCCc with z-normalization     -> peak at zero shift (correct)

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/random.h"
#include "core/sbd.h"
#include "harness/table.h"
#include "tseries/normalization.h"

int main() {
  using namespace kshape;

  const std::size_t m = 1024;
  constexpr double kPi = 3.14159265358979323846;

  // Two already-aligned sequences with a shared shape but very different
  // amplitude and offset (the regime of Figure 3): a large-amplitude biased
  // sequence vs a small one, both with a transient at the same position.
  common::Rng rng(20150603);
  tseries::Series x(m);
  tseries::Series y(m);
  for (std::size_t t = 0; t < m; ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(m);
    const double shape = std::sin(2.0 * kPi * 3.0 * u) +
                         2.0 * std::exp(-std::pow((u - 0.3) / 0.02, 2));
    x[t] = 40.0 + 25.0 * shape + rng.Gaussian(0.0, 0.5);
    y[t] = -1.0 + 0.5 * shape + rng.Gaussian(0.0, 0.05);
  }

  const tseries::Series zx = tseries::ZNormalized(x);
  const tseries::Series zy = tseries::ZNormalized(y);

  auto peak_of = [&](const std::vector<double>& ncc) {
    const auto it = std::max_element(ncc.begin(), ncc.end());
    const int index = static_cast<int>(it - ncc.begin());
    return std::make_pair(index - static_cast<int>(m) + 1, *it);
  };

  const auto [shift_b_raw, value_b_raw] = peak_of(core::NccSequence(
      x, y, core::NccNormalization::kBiased));
  const auto [shift_u, value_u] = peak_of(core::NccSequence(
      zx, zy, core::NccNormalization::kUnbiased));
  const auto [shift_c, value_c] = peak_of(core::NccSequence(
      zx, zy, core::NccNormalization::kCoefficient));

  harness::PrintSection(std::cout,
                        "Figure 3: cross-correlation normalizations on an "
                        "aligned pair (m = 1024, true shift = 0)");
  harness::TablePrinter table(
      {"Variant", "Data normalization", "Peak shift", "Peak value",
       "Correct?"});
  table.AddRow({"NCCb", "none", std::to_string(shift_b_raw),
                harness::FormatDouble(value_b_raw, 2),
                shift_b_raw == 0 ? "yes" : "no (amplitude bias)"});
  table.AddRow({"NCCu", "z-normalized", std::to_string(shift_u),
                harness::FormatDouble(value_u, 2),
                shift_u == 0 ? "yes" : "no (edge bias)"});
  table.AddRow({"NCCc", "z-normalized", std::to_string(shift_c),
                harness::FormatDouble(value_c, 2),
                shift_c == 0 ? "yes" : "no"});
  table.Print(std::cout);
  std::cout
      << "The paper's conclusion (Figure 3d): only coefficient normalization\n"
         "over z-normalized data places the peak at the true alignment,\n"
         "which is why SBD is built on NCCc.\n";
  return 0;
}
