// Reproduces Table 4 of the paper: hierarchical (single/average/complete
// linkage), spectral, and PAM k-medoids clustering with ED, cDTW5, and SBD,
// compared against the k-AVG+ED baseline by Rand index. Also prints
// Figure 9: average ranks of the methods that beat k-AVG+ED (k-Shape,
// PAM+SBD, PAM+cDTW, S+SBD) plus the baseline itself.
//
// Protocol (§4): fused train+test split, k = number of classes.
// Hierarchical methods are deterministic (one run); PAM and spectral average
// over random restarts. The O(n^2) dissimilarity matrix — the scalability
// bottleneck the paper charges against these methods — is computed once per
// dataset/measure and timed; restarts reuse it.

#include <cstdlib>
#include <iostream>

#include "cluster/averaging.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "cluster/spectral.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/archive.h"
#include "data/generators.h"
#include "tseries/normalization.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "harness/experiments.h"
#include "harness/table.h"

namespace {

using kshape::harness::MethodScores;

}  // namespace

int main() {
  using namespace kshape;

  int pam_runs = 10;
  int spectral_runs = 20;  // The paper uses 100; embedding reuse keeps the
                           // cost low, but 20 already stabilizes the mean.
  if (const char* env = std::getenv("KSHAPE_RUNS")) {
    pam_runs = std::max(1, std::atoi(env));
    spectral_runs = pam_runs;
  }

  const auto archive = data::MakeSyntheticArchive();

  const distance::EuclideanDistance ed;
  const dtw::DtwMeasure cdtw5 = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");
  const core::SbdDistance sbd;
  const std::vector<const distance::DistanceMeasure*> measures = {&ed, &cdtw5,
                                                                  &sbd};
  const std::vector<std::string> measure_names = {"ED", "cDTW", "SBD"};

  // Row order mirrors Table 4.
  std::vector<MethodScores> rows;
  auto row_index = [&](const std::string& name) -> MethodScores& {
    for (auto& row : rows) {
      if (row.name == name) return row;
    }
    rows.push_back(MethodScores{name, {}, 0.0});
    return rows.back();
  };
  for (const char* linkage : {"H-S", "H-A", "H-C"}) {
    for (const auto& mname : measure_names) {
      row_index(std::string(linkage) + "+" + mname);
    }
  }
  for (const auto& mname : measure_names) row_index("S+" + mname);
  for (const auto& mname : measure_names) row_index("PAM+" + mname);

  // Baseline and k-Shape (for Figure 9).
  const cluster::ArithmeticMeanAveraging mean_avg;
  const cluster::KMeans k_avg_ed(&ed, &mean_avg, "k-AVG+ED");
  const core::KShape kshape;
  MethodScores baseline{"k-AVG+ED", {}, 0.0};
  MethodScores kshape_scores{"k-Shape", {}, 0.0};

  uint64_t seed = 20150604;
  for (const auto& split : archive) {
    const tseries::Dataset fused = split.Fused();
    const int k = fused.NumClasses();
    const std::vector<int>& labels = fused.labels();

    {
      common::Stopwatch timer;
      baseline.scores.push_back(harness::AverageRandIndex(
          k_avg_ed, fused.batch(), labels, k, 10, seed));
      baseline.total_seconds += timer.ElapsedSeconds();
    }
    {
      common::Stopwatch timer;
      kshape_scores.scores.push_back(harness::AverageRandIndex(
          kshape, fused.batch(), labels, k, 10, seed));
      kshape_scores.total_seconds += timer.ElapsedSeconds();
    }

    for (std::size_t mi = 0; mi < measures.size(); ++mi) {
      common::Stopwatch matrix_timer;
      const linalg::Matrix d =
          cluster::PairwiseDistanceMatrix(fused.batch(), *measures[mi]);
      const double matrix_seconds = matrix_timer.ElapsedSeconds();

      // Hierarchical: deterministic, one run per linkage.
      const std::vector<std::pair<const char*, cluster::Linkage>> linkages = {
          {"H-S", cluster::Linkage::kSingle},
          {"H-A", cluster::Linkage::kAverage},
          {"H-C", cluster::Linkage::kComplete}};
      for (const auto& [prefix, linkage] : linkages) {
        MethodScores& row =
            row_index(std::string(prefix) + "+" + measure_names[mi]);
        common::Stopwatch timer;
        const auto merges = cluster::AgglomerativeDendrogram(d, linkage);
        const std::vector<int> assignments =
            cluster::CutDendrogram(merges, fused.size(), k);
        row.scores.push_back(eval::RandIndex(labels, assignments));
        row.total_seconds += matrix_seconds + timer.ElapsedSeconds();
      }

      // Spectral: the embedding is deterministic; only the embedded k-means
      // is random, so restarts share the embedding.
      {
        MethodScores& row = row_index("S+" + measure_names[mi]);
        common::Stopwatch timer;
        const linalg::Matrix embedding = cluster::SpectralEmbedding(d, k, -1.0);
        common::Rng seeder(seed + 17 * mi);
        double total = 0.0;
        for (int run = 0; run < spectral_runs; ++run) {
          common::Rng rng = seeder.Fork();
          const std::vector<int> assignments =
              cluster::KMeansOnRows(embedding, k, &rng);
          total += eval::RandIndex(labels, assignments);
        }
        row.scores.push_back(total / spectral_runs);
        row.total_seconds += matrix_seconds + timer.ElapsedSeconds();
      }

      // PAM: restarts share the dissimilarity matrix.
      {
        MethodScores& row = row_index("PAM+" + measure_names[mi]);
        common::Stopwatch timer;
        common::Rng seeder(seed + 31 * mi);
        double total = 0.0;
        for (int run = 0; run < pam_runs; ++run) {
          common::Rng rng = seeder.Fork();
          const cluster::ClusteringResult result =
              cluster::PamOnMatrix(d, k, &rng, cluster::PamOptions{});
          total += eval::RandIndex(labels, result.assignments);
        }
        row.scores.push_back(total / pam_runs);
        row.total_seconds += matrix_seconds + timer.ElapsedSeconds();
      }
    }
    ++seed;
  }

  harness::PrintSection(
      std::cout,
      "Table 4: hierarchical, spectral, and k-medoids variants vs k-AVG+ED "
      "(Rand index)");
  harness::PrintComparisonTable(baseline, rows, "Rand Index", 0.01, std::cout);

  harness::PrintSection(
      std::cout,
      "k-Shape vs PAM+cDTW (the paper's closest competitor, §5.3)");
  std::vector<std::string> dataset_names;
  for (const auto& split : archive) dataset_names.push_back(split.name());
  harness::PrintScatterPairs(row_index("PAM+cDTW"), kshape_scores, dataset_names,
                    std::cout);
  std::cout << "PAM+cDTW runtime factor vs k-Shape at archive scale: "
            << harness::FormatRatio(row_index("PAM+cDTW").total_seconds /
                                    kshape_scores.total_seconds)
            << "\n";

  // The paper's "two orders of magnitude slower" claim is asymptotic: the
  // dissimilarity matrix costs O(n^2) cDTW evaluations while k-Shape is
  // linear in n, so the factor is a function of dataset size. Demonstrate
  // the trend directly.
  harness::PrintSection(std::cout,
                        "PAM+cDTW vs k-Shape runtime as n grows "
                        "(CBF, m = 128, k = 3, single run)");
  {
    harness::TablePrinter scale_table(
        {"n", "PAM+cDTW (s)", "k-Shape (s)", "Factor"});
    for (int n : {300, 600, 1200, 2400}) {
      common::Rng data_rng(n);
      std::vector<tseries::Series> series;
      std::vector<int> labels;
      for (int i = 0; i < n; ++i) {
        tseries::Series s = data::MakeCbf(i % 3, 128, &data_rng);
        tseries::ZNormalizeInPlace(&s);
        series.push_back(std::move(s));
        labels.push_back(i % 3);
      }
      common::Stopwatch pam_timer;
      const linalg::Matrix d = cluster::PairwiseDistanceMatrix(series, cdtw5);
      common::Rng pam_rng(1);
      cluster::PamOnMatrix(d, 3, &pam_rng, cluster::PamOptions{});
      const double pam_seconds = pam_timer.ElapsedSeconds();

      common::Rng ks_rng(1);
      common::Stopwatch ks_timer;
      kshape.Cluster(series, 3, &ks_rng);
      const double ks_seconds = ks_timer.ElapsedSeconds();

      scale_table.AddRow({std::to_string(n),
                          harness::FormatDouble(pam_seconds, 2),
                          harness::FormatDouble(ks_seconds, 2),
                          harness::FormatRatio(pam_seconds / ks_seconds)});
    }
    scale_table.Print(std::cout);
    std::cout << "(The factor grows ~linearly in n — PAM+cDTW is quadratic, "
                 "k-Shape linear —\nreaching the paper's two orders of "
                 "magnitude at UCR-archive sizes.)\n";
  }

  harness::PrintSection(
      std::cout,
      "Figure 9: average ranks of methods outperforming k-AVG+ED");
  harness::PrintAverageRanks({kshape_scores, row_index("PAM+SBD"),
                     row_index("PAM+cDTW"), row_index("S+SBD"), baseline},
                    std::cout);
  return 0;
}
