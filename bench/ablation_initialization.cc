// Ablation (extension beyond the paper): k-Shape initialization strategy.
// Algorithm 3 initializes with uniformly random assignments; on small
// datasets with similar class shapes this is prone to a symmetric local
// optimum where all initial centroids coincide (every random mixture has the
// same dominant eigenvector) and the split never recovers. SBD-D^2
// ("k-means++-style") seeding starts from spread-out series instead. This
// bench quantifies the gap per dataset and in aggregate.

#include <iostream>

#include "core/kshape.h"
#include "data/archive.h"
#include "harness/experiments.h"
#include "harness/table.h"
#include "common/stopwatch.h"

int main() {
  using namespace kshape;

  const auto archive = data::MakeSyntheticArchive();

  const core::KShape kshape_random;  // Paper default.
  core::KShapeOptions pp_options;
  pp_options.init = core::KShapeInit::kPlusPlusSeeding;
  const core::KShape kshape_pp(pp_options);

  harness::MethodScores random_scores{"k-Shape (random init)", {}, 0.0};
  harness::MethodScores pp_scores{"k-Shape (SBD-D2 seeding)", {}, 0.0};
  std::vector<std::string> dataset_names;

  uint64_t seed = 99;
  for (const auto& split : archive) {
    const tseries::Dataset fused = split.Fused();
    const int k = fused.NumClasses();
    dataset_names.push_back(split.name());
    {
      common::Stopwatch timer;
      random_scores.scores.push_back(harness::AverageRandIndex(
          kshape_random, fused.batch(), fused.labels(), k, 10, seed));
      random_scores.total_seconds += timer.ElapsedSeconds();
    }
    {
      common::Stopwatch timer;
      pp_scores.scores.push_back(harness::AverageRandIndex(
          kshape_pp, fused.batch(), fused.labels(), k, 10, seed));
      pp_scores.total_seconds += timer.ElapsedSeconds();
    }
    ++seed;
  }

  harness::PrintSection(std::cout,
                        "Ablation: k-Shape initialization (random "
                        "assignment, Algorithm 3, vs SBD-D2 seeding)");
  harness::PrintComparisonTable(random_scores, {pp_scores}, "Rand Index",
                                0.01, std::cout);
  harness::PrintSection(std::cout, "Per-dataset Rand index");
  harness::PrintScatterPairs(random_scores, pp_scores, dataset_names,
                             std::cout);
  std::cout << "\n(The paper's protocol — averaging over random restarts — "
               "already absorbs part\nof the initialization variance; the "
               "seeding mainly helps datasets whose class\nshapes are "
               "similar, where random mixtures start indistinguishable.)\n";
  return 0;
}
