// Ablation of the paper's §3.3 escape hatch for long series: "in rare cases
// where m is very large, segmentation or dimensionality reduction approaches
// can be used to sufficiently reduce the length of the sequences." This
// bench clusters long CBF series with k-Shape at full length and on PAA
// sketches of decreasing size, reporting runtime and Rand index: the
// expected shape is a near-flat accuracy curve with sharply falling runtime
// until the sketch destroys the class-defining structure.

#include <iostream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "tseries/normalization.h"
#include "tseries/paa.h"

int main() {
  using namespace kshape;

  const std::size_t kFullLength = 512;
  const int kSeriesCount = 120;

  common::Rng data_rng(20150607);
  std::vector<tseries::Series> full;
  std::vector<int> labels;
  for (int i = 0; i < kSeriesCount; ++i) {
    const int klass = i % 3;
    full.push_back(data::MakeCbf(klass, kFullLength, &data_rng));
    labels.push_back(klass);
  }

  const core::KShape kshape;
  harness::PrintSection(std::cout,
                        "Ablation: k-Shape on PAA-reduced series "
                        "(CBF, m = 512, n = 120, k = 3; cf. §3.3)");
  harness::TablePrinter table({"Length", "Reduction", "Runtime (s)",
                               "Rand index"});

  for (std::size_t segments : {kFullLength, std::size_t{256}, std::size_t{128},
                               std::size_t{64}, std::size_t{32},
                               std::size_t{16}, std::size_t{8}}) {
    std::vector<tseries::Series> series;
    series.reserve(full.size());
    for (const auto& s : full) {
      series.push_back(tseries::ZNormalized(
          segments == kFullLength ? s : tseries::Paa(s, segments)));
    }

    common::Rng rng(3);
    common::Stopwatch timer;
    const auto result = kshape.Cluster(series, 3, &rng);
    const double seconds = timer.ElapsedSeconds();

    table.AddRow({std::to_string(segments),
                  segments == kFullLength
                      ? "1x"
                      : harness::FormatRatio(
                            static_cast<double>(kFullLength) /
                            static_cast<double>(segments)),
                  harness::FormatDouble(seconds, 3),
                  harness::FormatDouble(
                      eval::RandIndex(labels, result.assignments))});
  }
  table.Print(std::cout);
  std::cout << "(Expected: accuracy holds across moderate reductions while "
               "runtime falls with\nthe m^2/m^3 refinement terms; very small "
               "sketches destroy the CBF ramp/plateau\ndistinction and "
               "accuracy collapses.)\n";
  return 0;
}
