// Ablation of a design choice called out in DESIGN.md: the eigenvector
// computation inside shape extraction (Algorithm 2). The maximizer of the
// Rayleigh quotient is the dominant eigenvector of the PSD matrix M; the
// reference implementation calls a full eigensolver (MATLAB eigs), while
// this library defaults to warm-started power iteration applied MATRIX-FREE
// (O(n_c*m) per step over the pooled members, the m x m Gram never formed).
// Four variants, cheapest first:
//   matfree-warm : matrix-free power iteration, warm-started (the default)
//   gram-warm    : dense Gram + power iteration, warm-started
//   gram-cold    : dense Gram + power iteration, random start
//   full-eigen   : dense Gram + full O(m^3) symmetric eigendecomposition
// The per-phase telemetry (ClusteringResult::extraction_seconds /
// assignment_seconds, monotonic clock summed across refinement iterations)
// separates what each variant actually changes — the extraction phase — from
// the shared assignment scans.

#include <iostream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "tseries/normalization.h"

namespace {

struct Variant {
  const char* name;
  kshape::core::KShapeOptions options;
};

}  // namespace

int main() {
  using namespace kshape;

  std::vector<Variant> variants(4);
  variants[0].name = "matfree-warm";  // The library default.
  variants[1].name = "gram-warm";
  variants[1].options.shape_options.use_matrix_free = false;
  variants[2].name = "gram-cold";
  variants[2].options.shape_options.use_matrix_free = false;
  variants[2].options.shape_options.warm_start = false;
  variants[3].name = "full-eigen";
  variants[3].options.shape_options.use_power_iteration = false;

  harness::PrintSection(std::cout,
                        "Ablation: shape-extraction eigensolver (matrix-free "
                        "/ Gram power iteration vs full decomposition), CBF, "
                        "n = 150");
  harness::TablePrinter table({"m", "variant", "total (s)", "extract (s)",
                               "assign (s)", "vs matfree", "Rand"});

  for (std::size_t m : {64, 128, 256, 512}) {
    common::Rng data_rng(m);
    std::vector<tseries::Series> series;
    std::vector<int> labels;
    for (int i = 0; i < 150; ++i) {
      const int klass = i % 3;
      series.push_back(
          tseries::ZNormalized(data::MakeCbf(klass, m, &data_rng)));
      labels.push_back(klass);
    }

    double matfree_extract = 0.0;
    for (const Variant& variant : variants) {
      const core::KShape algorithm(variant.options);
      common::Rng rng(7);
      common::Stopwatch timer;
      const auto result = algorithm.Cluster(series, 3, &rng);
      const double seconds = timer.ElapsedSeconds();
      if (&variant == &variants[0]) matfree_extract = result.extraction_seconds;
      table.AddRow(
          {std::to_string(m), variant.name,
           harness::FormatDouble(seconds, 3),
           harness::FormatDouble(result.extraction_seconds, 3),
           harness::FormatDouble(result.assignment_seconds, 3),
           matfree_extract > 0.0
               ? harness::FormatRatio(result.extraction_seconds /
                                      matfree_extract)
               : "-",
           harness::FormatDouble(eval::RandIndex(labels,
                                                 result.assignments))});
    }
  }
  table.Print(std::cout);
  std::cout << "(All variants converge to the same centroids because M's "
               "dominant\neigenvalue is well separated on real clusters; "
               "\"vs matfree\" compares\nextraction-phase seconds against the "
               "default. The matrix-free path skips the\nO(n_c*m^2) Gram "
               "accumulation and pays O(n_c*m) per power step, so its edge\n"
               "grows with m; the warm start — seeding with the previous "
               "centroid — shaves\nthe step count on every variant that uses "
               "it. The assignment column is the\nshared NCC scan, untouched "
               "by the eigensolver choice.)\n";
  return 0;
}
