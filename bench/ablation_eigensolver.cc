// Ablation of a design choice called out in DESIGN.md: the eigenvector
// computation inside shape extraction (Algorithm 2). The maximizer of the
// Rayleigh quotient is the dominant eigenvector of the PSD matrix M; the
// reference implementation calls a full eigensolver (MATLAB eigs), while
// this library defaults to power iteration (O(m^2) per step vs O(m^3)).
// This bench shows end-to-end k-Shape accuracy is unaffected while runtime
// improves, across series lengths.

#include <iostream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "tseries/normalization.h"

int main() {
  using namespace kshape;

  core::KShapeOptions power_options;
  power_options.shape_options.use_power_iteration = true;
  const core::KShape kshape_power(power_options);

  core::KShapeOptions cold_options;
  cold_options.shape_options.use_power_iteration = true;
  cold_options.shape_options.warm_start = false;
  const core::KShape kshape_cold(cold_options);

  core::KShapeOptions full_options;
  full_options.shape_options.use_power_iteration = false;
  const core::KShape kshape_full(full_options);

  harness::PrintSection(std::cout,
                        "Ablation: shape-extraction eigensolver (warm/cold "
                        "power iteration vs full decomposition), CBF, "
                        "n = 150");
  harness::TablePrinter table({"m", "Warm (s)", "Cold (s)", "Full eigen (s)",
                               "Full/Warm", "Warm Rand", "Cold Rand",
                               "Full Rand"});

  for (std::size_t m : {64, 128, 256, 512}) {
    common::Rng data_rng(m);
    std::vector<tseries::Series> series;
    std::vector<int> labels;
    for (int i = 0; i < 150; ++i) {
      const int klass = i % 3;
      series.push_back(
          tseries::ZNormalized(data::MakeCbf(klass, m, &data_rng)));
      labels.push_back(klass);
    }

    common::Rng rng_a(7);
    common::Stopwatch power_timer;
    const auto power_result = kshape_power.Cluster(series, 3, &rng_a);
    const double power_seconds = power_timer.ElapsedSeconds();

    common::Rng rng_c(7);
    common::Stopwatch cold_timer;
    const auto cold_result = kshape_cold.Cluster(series, 3, &rng_c);
    const double cold_seconds = cold_timer.ElapsedSeconds();

    common::Rng rng_b(7);
    common::Stopwatch full_timer;
    const auto full_result = kshape_full.Cluster(series, 3, &rng_b);
    const double full_seconds = full_timer.ElapsedSeconds();

    table.AddRow(
        {std::to_string(m), harness::FormatDouble(power_seconds, 3),
         harness::FormatDouble(cold_seconds, 3),
         harness::FormatDouble(full_seconds, 3),
         harness::FormatRatio(full_seconds / power_seconds),
         harness::FormatDouble(eval::RandIndex(labels,
                                               power_result.assignments)),
         harness::FormatDouble(eval::RandIndex(labels,
                                               cold_result.assignments)),
         harness::FormatDouble(eval::RandIndex(labels,
                                               full_result.assignments))});
  }
  table.Print(std::cout);
  std::cout << "(Power iteration converges to the same centroid because M's "
               "dominant\neigenvalue is well separated on real clusters; the "
               "speedup grows with m,\nconsistent with the O(m^2)-per-step "
               "vs O(m^3) analysis in §3.3. The warm\nstart seeds each "
               "iteration with the previous centroid — close to the new\n"
               "eigenvector once the clustering settles — shaving the "
               "per-call step count\nwithout touching accuracy.)\n";
  return 0;
}
