// Contiguous-vs-nested storage layout microbenchmarks for the flat
// row-major SeriesStore behind Dataset: the same kernels run once over a
// nested std::vector<Series> (one heap allocation per row, the pre-refactor
// layout) and once over one contiguous buffer, and must produce bit-identical
// results. One BENCH JSON line per (workload, thread count):
//
//   BENCH {"bench":"storage_layout","workload":"ed_pairwise_matrix",
//          "n":300,"m":512,"threads":1,"nested_seconds":0.412,
//          "contiguous_seconds":0.371,"speedup":1.11}
//
// The records are also written to BENCH_storage_layout.json (a JSON array)
// in the working directory for CI consumption. The acceptance bar: the
// contiguous ED pairwise matrix is at least as fast as the nested baseline.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/kmedoids.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/sbd_engine.h"
#include "data/generators.h"
#include "distance/euclidean.h"
#include "harness/table.h"
#include "linalg/matrix.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

using kshape::tseries::Series;
using kshape::tseries::SeriesBatch;
using kshape::tseries::SeriesStore;
using kshape::tseries::SeriesView;

constexpr int kThreadCounts[] = {1, 4};
constexpr int kRepetitions = 5;

// The same corpus in both layouts: a nested vector of per-row allocations
// and a flat SeriesStore filled row by row from it.
struct TwoLayouts {
  std::vector<Series> nested;
  SeriesStore flat;
};

TwoLayouts MakeCorpus(std::size_t n, std::size_t m, uint64_t seed) {
  kshape::common::Rng rng(seed);
  TwoLayouts corpus;
  corpus.nested.reserve(n);
  corpus.flat.Reserve(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    corpus.nested.push_back(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
    corpus.flat.Append(corpus.nested.back());
  }
  return corpus;
}

std::vector<std::string> g_records;

void Record(const char* workload, std::size_t n, std::size_t m, int threads,
            double nested_seconds, double contiguous_seconds) {
  const double speedup =
      contiguous_seconds > 0.0 ? nested_seconds / contiguous_seconds : 0.0;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"storage_layout\",\"workload\":\"%s\",\"n\":%zu,"
      "\"m\":%zu,\"threads\":%d,\"nested_seconds\":%.6f,"
      "\"contiguous_seconds\":%.6f,\"speedup\":%.3f}",
      workload, n, m, threads, nested_seconds, contiguous_seconds, speedup);
  std::printf("BENCH %s\n", buffer);
  g_records.emplace_back(buffer);
}

// Minimum of kRepetitions timings: layout effects are small relative to
// scheduler noise, and the minimum is the standard robust estimator for
// cache-bound microbenchmarks.
double TimeSeconds(const std::function<void()>& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kRepetitions; ++rep) {
    kshape::common::Stopwatch timer;
    run();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

void PrintRow(kshape::harness::TablePrinter* table, int threads,
              double nested_seconds, double contiguous_seconds) {
  table->AddRow({std::to_string(threads),
                 kshape::harness::FormatDouble(nested_seconds, 4),
                 kshape::harness::FormatDouble(contiguous_seconds, 4),
                 kshape::harness::FormatRatio(nested_seconds /
                                              contiguous_seconds)});
}

// Workload 1: z-normalize every row in place. The nested path touches n
// scattered allocations; the contiguous path streams one buffer.
void BenchZNorm(std::size_t n, std::size_t m) {
  using namespace kshape;
  harness::PrintSection(std::cout, "z-normalization sweep (n=" +
                                       std::to_string(n) +
                                       ", m=" + std::to_string(m) + ")");
  const TwoLayouts corpus = MakeCorpus(n, m, 1);

  // Bit-identity: both layouts must normalize to exactly the same values.
  {
    std::vector<Series> nested = corpus.nested;
    SeriesStore flat = corpus.flat;
    for (Series& row : nested) tseries::ZNormalizeInPlace(&row);
    for (std::size_t i = 0; i < flat.size(); ++i) {
      tseries::ZNormalizeInPlace(flat.MutableView(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const SeriesView row = flat.view(i);
      KSHAPE_CHECK_MSG(
          std::equal(row.begin(), row.end(), nested[i].begin()),
          "contiguous z-norm diverged from nested");
    }
  }

  harness::TablePrinter table(
      {"threads", "nested (s)", "contiguous (s)", "speedup"});
  const double nested_seconds = TimeSeconds([&] {
    std::vector<Series> nested = corpus.nested;
    for (Series& row : nested) tseries::ZNormalizeInPlace(&row);
  });
  const double contiguous_seconds = TimeSeconds([&] {
    SeriesStore flat = corpus.flat;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      tseries::ZNormalizeInPlace(flat.MutableView(i));
    }
  });
  Record("znorm_sweep", n, m, 1, nested_seconds, contiguous_seconds);
  PrintRow(&table, 1, nested_seconds, contiguous_seconds);
  table.Print(std::cout);
}

// Workload 2: ED row scan — one query against every row, the inner loop of
// 1-NN classification and k-means assignment.
void BenchEdRowScan(std::size_t n, std::size_t m) {
  using namespace kshape;
  harness::PrintSection(std::cout, "ED row scan (n=" + std::to_string(n) +
                                       ", m=" + std::to_string(m) + ")");
  const TwoLayouts corpus = MakeCorpus(n, m, 2);
  const Series query = corpus.nested[n / 2];
  const SeriesBatch nested_batch(corpus.nested);
  const SeriesBatch flat_batch(corpus.flat);

  auto scan = [&](const SeriesBatch& batch, std::vector<double>* out) {
    out->resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      (*out)[i] = distance::EuclideanDistanceValue(query, batch[i]);
    }
  };

  std::vector<double> nested_out;
  std::vector<double> flat_out;
  scan(nested_batch, &nested_out);
  scan(flat_batch, &flat_out);
  KSHAPE_CHECK_MSG(nested_out == flat_out,
                   "contiguous ED scan diverged from nested");

  harness::TablePrinter table(
      {"threads", "nested (s)", "contiguous (s)", "speedup"});
  std::vector<double> scratch;
  const double nested_seconds =
      TimeSeconds([&] { scan(nested_batch, &scratch); });
  const double contiguous_seconds =
      TimeSeconds([&] { scan(flat_batch, &scratch); });
  Record("ed_row_scan", n, m, 1, nested_seconds, contiguous_seconds);
  PrintRow(&table, 1, nested_seconds, contiguous_seconds);
  table.Print(std::cout);
}

// Workload 3: full ED pairwise distance matrix — the acceptance workload.
// Contiguous throughput must be at least as good as the nested baseline.
void BenchEdPairwiseMatrix(std::size_t n, std::size_t m) {
  using namespace kshape;
  harness::PrintSection(std::cout,
                        "ED pairwise matrix (n=" + std::to_string(n) +
                            ", m=" + std::to_string(m) + ")");
  const TwoLayouts corpus = MakeCorpus(n, m, 3);
  const SeriesBatch nested_batch(corpus.nested);
  const SeriesBatch flat_batch(corpus.flat);
  const distance::EuclideanDistance ed;

  common::SetThreadCount(1);
  const linalg::Matrix reference =
      cluster::PairwiseDistanceMatrix(nested_batch, ed);
  const linalg::Matrix contiguous =
      cluster::PairwiseDistanceMatrix(flat_batch, ed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      KSHAPE_CHECK_MSG(reference(i, j) == contiguous(i, j),
                       "contiguous pairwise matrix diverged from nested");
    }
  }

  harness::TablePrinter table(
      {"threads", "nested (s)", "contiguous (s)", "speedup"});
  for (int threads : kThreadCounts) {
    common::SetThreadCount(threads);
    const double nested_seconds = TimeSeconds(
        [&] { cluster::PairwiseDistanceMatrix(nested_batch, ed); });
    const double contiguous_seconds =
        TimeSeconds([&] { cluster::PairwiseDistanceMatrix(flat_batch, ed); });
    Record("ed_pairwise_matrix", n, m, threads, nested_seconds,
           contiguous_seconds);
    PrintRow(&table, threads, nested_seconds, contiguous_seconds);
  }
  table.Print(std::cout);
  common::SetThreadCount(1);
}

// Workload 4: SBD spectrum build — SbdEngine construction transforms every
// series once; the contiguous layout feeds the FFT from one buffer.
void BenchSbdSpectrumBuild(std::size_t n, std::size_t m) {
  using namespace kshape;
  harness::PrintSection(std::cout,
                        "SBD spectrum build (n=" + std::to_string(n) +
                            ", m=" + std::to_string(m) + ")");
  const TwoLayouts corpus = MakeCorpus(n, m, 4);
  const SeriesBatch nested_batch(corpus.nested);
  const SeriesBatch flat_batch(corpus.flat);

  // Bit-identity through the engine: identical spectra give identical
  // distances.
  {
    const core::SbdEngine nested_engine(nested_batch);
    const core::SbdEngine flat_engine(flat_batch);
    const std::vector<double> nested_row =
        nested_engine.DistanceToAll(corpus.nested[0]);
    const std::vector<double> flat_row =
        flat_engine.DistanceToAll(corpus.flat.view(0));
    KSHAPE_CHECK_MSG(nested_row == flat_row,
                     "contiguous SbdEngine diverged from nested");
  }

  harness::TablePrinter table(
      {"threads", "nested (s)", "contiguous (s)", "speedup"});
  const double nested_seconds =
      TimeSeconds([&] { core::SbdEngine engine(nested_batch); });
  const double contiguous_seconds =
      TimeSeconds([&] { core::SbdEngine engine(flat_batch); });
  Record("sbd_spectrum_build", n, m, 1, nested_seconds, contiguous_seconds);
  PrintRow(&table, 1, nested_seconds, contiguous_seconds);
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke shrinks every workload so CI can run the full binary (layout
  // cross-checks included) in a couple of seconds.
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::size_t scale = smoke ? 4 : 1;

  BenchZNorm(2000 / scale, 512);
  BenchEdRowScan(4000 / scale, 512);
  BenchEdPairwiseMatrix(600 / scale, 256);
  BenchSbdSpectrumBuild(1000 / scale, 512);

  std::ofstream json("BENCH_storage_layout.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    json << "  " << g_records[i] << (i + 1 < g_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_storage_layout.json (%zu records)\n",
              g_records.size());
  return 0;
}
