// Reproduces the paper's headline ECG claims (§1, §5.1, §5.2) on the
// ECG-like synthetic dataset:
//   1. SBD's 1-NN accuracy beats cDTW's on this out-of-phase data
//      (paper: 98.9% vs 79.7% on ECGFiveDays).
//   2. k-Shape's clustering Rand index far exceeds k-medoids+cDTW's
//      (paper: ~84% vs ~53%).

#include <iostream>

#include "classify/nearest_neighbor.h"
#include "cluster/kmedoids.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "harness/experiments.h"
#include "harness/table.h"
#include "tseries/normalization.h"

int main() {
  using namespace kshape;

  // A small training set, as in ECGFiveDays (23 training sequences): with
  // few phase examples per class, a measure must *align* rather than hope a
  // neighbor with a matching offset exists.
  common::Rng rng(20150531);
  const data::GeneratorFn generator = [](int klass, common::Rng* r) {
    return data::MakeEcgLike(klass, 136, r, 0.35);
  };
  tseries::SplitDataset split =
      data::MakeSplitDataset("ECGLike", 2, 6, 60, generator, &rng);
  tseries::ZNormalizeDataset(&split.train);
  tseries::ZNormalizeDataset(&split.test);

  const core::SbdDistance sbd;
  const distance::EuclideanDistance ed;
  const dtw::DtwMeasure cdtw5 = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");

  harness::PrintSection(std::cout,
                        "Headline claim 1: 1-NN accuracy on out-of-phase "
                        "ECG-like data (paper: SBD 98.9% vs cDTW 79.7%)");
  harness::TablePrinter nn_table({"Measure", "1-NN accuracy"});
  nn_table.AddRow({"SBD", harness::FormatDouble(classify::OneNnAccuracy(
                              split.train, split.test, sbd))});
  nn_table.AddRow({"cDTW5", harness::FormatDouble(classify::OneNnAccuracy(
                                split.train, split.test, cdtw5))});
  nn_table.AddRow({"ED", harness::FormatDouble(classify::OneNnAccuracy(
                             split.train, split.test, ed))});
  nn_table.Print(std::cout);

  harness::PrintSection(std::cout,
                        "Headline claim 2: clustering Rand index on the "
                        "fused split (paper: k-Shape ~0.84 vs PAM+cDTW "
                        "~0.53)");
  const tseries::Dataset fused = split.Fused();
  const core::KShape kshape;
  const cluster::KMedoids pam_cdtw(&cdtw5, "PAM+cDTW");
  const int runs = 10;
  const double kshape_rand = harness::AverageRandIndex(
      kshape, fused.batch(), fused.labels(), 2, runs, 1);
  const double pam_rand = harness::AverageRandIndex(
      pam_cdtw, fused.batch(), fused.labels(), 2, runs, 2);
  harness::TablePrinter cl_table({"Method", "Rand index (10 runs)"});
  cl_table.AddRow({"k-Shape", harness::FormatDouble(kshape_rand)});
  cl_table.AddRow({"PAM+cDTW", harness::FormatDouble(pam_rand)});
  cl_table.Print(std::cout);

  std::cout << "\nExpected shape: SBD >= cDTW on accuracy and k-Shape >> "
               "PAM+cDTW on Rand index,\nbecause a global alignment (which "
               "SBD finds) explains this data while cDTW's\nlocal warping "
               "matches individual ripples across classes (Figure 1).\n";
  return 0;
}
