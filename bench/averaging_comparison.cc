// Reproduces the §2.5 narrative experimentally: among the DTW averaging
// techniques (NLAAF, PSA, DBA), "DBA seems to be the most efficient and
// accurate averaging approach when DTW is used". Each method is run (a) as a
// pure averaging problem — sum of squared DTW distances from the computed
// average to the members — and (b) inside k-means with DTW as the distance
// (i.e., k-NLAAF / k-PSA / k-DBA), reporting Rand index on a subset of the
// archive.

#include <iostream>

#include "cluster/averaging.h"
#include "cluster/dba.h"
#include "cluster/kmeans.h"
#include "cluster/pairwise_averaging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "data/archive.h"
#include "distance/dtw.h"
#include "harness/experiments.h"
#include "harness/table.h"

int main() {
  using namespace kshape;

  const cluster::ArithmeticMeanAveraging mean_avg;
  const cluster::DbaAveraging dba;
  const cluster::NlaafAveraging nlaaf;
  const cluster::PsaAveraging psa;

  // (a) Averaging quality: sum of squared DTW distances to cluster members.
  harness::PrintSection(std::cout,
                        "Averaging quality (sum of squared DTW distances "
                        "from average to members; smaller is better)");
  {
    harness::TablePrinter table(
        {"Dataset", "Mean", "NLAAF", "PSA", "DBA (1 pass)", "DBA (5 passes)"});
    const auto archive = data::MakeSyntheticArchive();
    // Use the warp-heavy families where averaging technique matters.
    for (const auto& split : archive) {
      if (split.name() != "CBF" && split.name() != "WarpedPatterns" &&
          split.name() != "TwoPatterns") {
        continue;
      }
      const tseries::Dataset& train = split.train;
      // Members: the first class only.
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < train.size(); ++i) {
        if (train.label(i) == 0) members.push_back(i);
      }
      const tseries::Series zero(train.length(), 0.0);
      common::Rng rng(5);

      auto cost_of = [&](const tseries::Series& average) {
        double total = 0.0;
        for (std::size_t i : members) {
          const double d = dtw::DtwDistance(average, train.series(i));
          total += d * d;
        }
        return total;
      };

      cluster::DbaOptions five_options;
      five_options.refinements = 5;
      const cluster::DbaAveraging dba5(five_options);

      table.AddRow(
          {split.name(),
           harness::FormatDouble(
               cost_of(mean_avg.Average(train.batch(), members, zero, &rng)),
               2),
           harness::FormatDouble(
               cost_of(nlaaf.Average(train.batch(), members, zero, &rng)), 2),
           harness::FormatDouble(
               cost_of(psa.Average(train.batch(), members, zero, &rng)), 2),
           harness::FormatDouble(
               cost_of(dba.Average(train.batch(), members, zero, &rng)), 2),
           harness::FormatDouble(
               cost_of(dba5.Average(train.batch(), members, zero, &rng)),
               2)});
    }
    table.Print(std::cout);
  }

  // (b) End-to-end: k-means + DTW with each averaging method.
  harness::PrintSection(std::cout,
                        "k-means + DTW with each averaging method "
                        "(Rand index, 3 restarts, warp-heavy datasets)");
  {
    const dtw::DtwMeasure dtw_full = dtw::DtwMeasure::Unconstrained();
    // NLAAF and especially PSA recompute O(r) / O(r^2) warping paths per
    // refinement; cap the k-means iterations so the end-to-end comparison
    // stays laptop-scale (quality differences emerge within a few
    // iterations).
    cluster::KMeansOptions capped;
    capped.max_iterations = 10;
    const cluster::KMeans k_mean(&dtw_full, &mean_avg, "k-AVG+DTW", capped);
    const cluster::KMeans k_nlaaf(&dtw_full, &nlaaf, "k-NLAAF", capped);
    const cluster::KMeans k_psa(&dtw_full, &psa, "k-PSA", capped);
    const cluster::KMeans k_dba(&dtw_full, &dba, "k-DBA", capped);

    std::vector<harness::MethodScores> scores(4);
    const std::vector<const cluster::ClusteringAlgorithm*> methods = {
        &k_mean, &k_nlaaf, &k_psa, &k_dba};
    for (std::size_t j = 0; j < methods.size(); ++j) {
      scores[j].name = methods[j]->Name();
    }

    const auto archive = data::MakeSyntheticArchive();
    std::vector<std::string> names;
    uint64_t seed = 31;
    for (const auto& split : archive) {
      if (split.name() != "CBF" && split.name() != "WarpedPatterns") {
        continue;
      }
      names.push_back(split.name());
      // The training split keeps n modest: PSA's averaging is quadratic in
      // the cluster size.
      const tseries::Dataset& dataset = split.train;
      for (std::size_t j = 0; j < methods.size(); ++j) {
        common::Stopwatch timer;
        scores[j].scores.push_back(harness::AverageRandIndex(
            *methods[j], dataset.batch(), dataset.labels(),
            dataset.NumClasses(), 3, seed));
        scores[j].total_seconds += timer.ElapsedSeconds();
      }
      ++seed;
    }

    harness::TablePrinter table({"Dataset", "k-AVG+DTW", "k-NLAAF", "k-PSA",
                                 "k-DBA"});
    for (std::size_t i = 0; i < names.size(); ++i) {
      table.AddRow({names[i], harness::FormatDouble(scores[0].scores[i]),
                    harness::FormatDouble(scores[1].scores[i]),
                    harness::FormatDouble(scores[2].scores[i]),
                    harness::FormatDouble(scores[3].scores[i])});
    }
    table.Print(std::cout);
    std::cout << "Total runtime (s): k-AVG+DTW "
              << harness::FormatDouble(scores[0].total_seconds, 1)
              << ", k-NLAAF "
              << harness::FormatDouble(scores[1].total_seconds, 1)
              << ", k-PSA "
              << harness::FormatDouble(scores[2].total_seconds, 1)
              << ", k-DBA "
              << harness::FormatDouble(scores[3].total_seconds, 1) << "\n";
  }
  std::cout << "\n(Expected, per §2.5: DBA at least matches NLAAF/PSA on "
               "quality and is cheaper\nthan PSA's O(r^2) pairwise-DTW "
               "agglomeration.)\n";
  return 0;
}
