// Reproduces Appendix A of the paper (Figures 10-11): 1-NN classification
// accuracy of the cross-correlation variants SBD (= NCCc), NCCu and NCCb
// under three time-series normalizations. Following the paper, the archive
// is regenerated unnormalized and every sequence is multiplied by an
// individual random factor; then each normalization scenario is applied:
//   OptimalScaling      - pairwise least-squares amplitude match
//   ValuesBetween0-1    - min-max to [0, 1]
//   z-normalization     - zero mean, unit variance
// Expected shape (Appendix A): SBD wins everywhere; NCCb beats NCCu under
// OptimalScaling and ValuesBetween0-1; SBD ~ NCCb >> NCCu under z-norm.

#include <iostream>

#include "classify/nearest_neighbor.h"
#include "core/sbd.h"
#include "data/archive.h"
#include "harness/experiments.h"
#include "harness/table.h"
#include "tseries/normalization.h"

namespace {

using kshape::core::CrossCorrelationImpl;
using kshape::core::MaxNcc;
using kshape::core::NccNormalization;
using kshape::tseries::Series;

// NCC-variant distances under the OptimalScaling scenario: scale y toward x
// before correlating (Appendix A: "SBD(x, y) is computed as SBD(x, c*y)").
class OptimallyScaledNcc : public kshape::distance::DistanceMeasure {
 public:
  explicit OptimallyScaledNcc(NccNormalization norm) : norm_(norm) {}
  double Distance(kshape::tseries::SeriesView x,
                  kshape::tseries::SeriesView y) const override {
    const Series scaled = kshape::tseries::OptimallyScaled(x, y);
    return 1.0 - MaxNcc(x, scaled, norm_).value;
  }
  std::string Name() const override {
    return std::string(kshape::core::NccNormalizationName(norm_)) + "@opt";
  }

 private:
  NccNormalization norm_;
};

}  // namespace

int main() {
  using namespace kshape;

  data::ArchiveOptions options;
  options.z_normalize = false;  // Appendix A starts from unnormalized data.
  const auto raw_archive = data::MakeSyntheticArchive(options);

  const std::vector<NccNormalization> variants = {
      NccNormalization::kCoefficient, NccNormalization::kBiased,
      NccNormalization::kUnbiased};
  const std::vector<std::string> variant_names = {"SBD(NCCc)", "NCCb",
                                                  "NCCu"};

  const std::vector<std::string> scenarios = {"OptimalScaling",
                                              "ValuesBetween0-1",
                                              "z-normalization"};

  for (const std::string& scenario : scenarios) {
    std::vector<harness::MethodScores> scores(variants.size());
    for (std::size_t v = 0; v < variants.size(); ++v) {
      scores[v].name = variant_names[v];
    }

    common::Rng rescale_rng(7);
    for (const auto& split : raw_archive) {
      // Per-sequence random amplitude factors, as in Appendix A.
      tseries::SplitDataset prepared = split;
      tseries::RandomlyRescaleDataset(&prepared.train, &rescale_rng);
      tseries::RandomlyRescaleDataset(&prepared.test, &rescale_rng);

      if (scenario == "ValuesBetween0-1") {
        for (std::size_t i = 0; i < prepared.train.size(); ++i) {
          tseries::MinMaxNormalizeInPlace(prepared.train.MutableView(i));
        }
        for (std::size_t i = 0; i < prepared.test.size(); ++i) {
          tseries::MinMaxNormalizeInPlace(prepared.test.MutableView(i));
        }
      } else if (scenario == "z-normalization") {
        tseries::ZNormalizeDataset(&prepared.train);
        tseries::ZNormalizeDataset(&prepared.test);
      }
      // OptimalScaling leaves the data as-is; the scaling happens pairwise
      // inside the distance.

      for (std::size_t v = 0; v < variants.size(); ++v) {
        double accuracy;
        if (scenario == "OptimalScaling") {
          const OptimallyScaledNcc measure(variants[v]);
          accuracy = classify::OneNnAccuracy(prepared.train, prepared.test,
                                             measure);
        } else {
          const core::NccDistance measure(variants[v]);
          accuracy = classify::OneNnAccuracy(prepared.train, prepared.test,
                                             measure);
        }
        scores[v].scores.push_back(accuracy);
        scores[v].total_seconds += 1.0;  // Runtime not the subject here.
      }
    }

    harness::PrintSection(std::cout,
                          "Appendix A (" + scenario +
                              "): 1-NN accuracy of cross-correlation "
                              "variants");
    PrintComparisonTable(scores[0], {scores[1], scores[2]}, "Accuracy", 0.01,
                         std::cout);
  }
  std::cout << "\n(Compare with Figures 10-11: SBD dominates both raw "
               "variants under every normalization.)\n";
  return 0;
}
