// Scalar-vs-dispatched throughput for every kernel in the SIMD layer
// (src/simd/), plus two end-to-end workloads that run whole pipelines under
// each backend. One BENCH JSON line per (kernel, length) and per end-to-end
// workload:
//
//   BENCH {"bench":"simd_kernels","workload":"squared_ed","n":0,"m":512,
//          "backend":"avx2","scalar_seconds":0.021,"simd_seconds":0.006,
//          "speedup":3.5}
//
// The records are also written to BENCH_simd_kernels.json (a JSON array) in
// the working directory for CI consumption. The acceptance bar: >= 2x over
// the true scalar baseline on the squared-ED and z-norm kernels at m >= 512
// on AVX2 hardware. Before each timing pair the two backends are checked for
// bit-identical outputs — the determinism contract holds in the benchmark
// binary too, not just in the test suite.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "cluster/kmedoids.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/sbd_engine.h"
#include "data/generators.h"
#include "distance/euclidean.h"
#include "harness/table.h"
#include "linalg/matrix.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

using kshape::simd::Backend;
using kshape::simd::KernelTable;
using kshape::tseries::Series;
using kshape::tseries::SeriesBatch;
using kshape::tseries::SeriesStore;

constexpr int kRepetitions = 5;
constexpr std::size_t kLengths[] = {128, 512, 2048};

bool g_smoke = false;
std::vector<std::string> g_records;

void Record(const char* workload, std::size_t n, std::size_t m,
            double scalar_seconds, double simd_seconds) {
  const double speedup =
      simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 0.0;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"simd_kernels\",\"workload\":\"%s\",\"n\":%zu,"
      "\"m\":%zu,\"backend\":\"%s\",\"scalar_seconds\":%.6f,"
      "\"simd_seconds\":%.6f,\"speedup\":%.3f}",
      workload, n, m, kshape::simd::ActiveBackendName(), scalar_seconds,
      simd_seconds, speedup);
  std::printf("BENCH %s\n", buffer);
  g_records.emplace_back(buffer);
}

// Minimum of kRepetitions timings — the robust estimator for cache-resident
// microkernels (same policy as the storage_layout bench).
double TimeSeconds(const std::function<void()>& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kRepetitions; ++rep) {
    kshape::common::Stopwatch timer;
    run();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

std::vector<double> RandomBuffer(std::size_t n, kshape::common::Rng* rng,
                                 double lo = -2.0, double hi = 2.0) {
  std::vector<double> x(n);
  for (double& v : x) v = rng->Uniform(lo, hi);
  return x;
}

// Iterations per timing rep, sized so every length does a comparable amount
// of arithmetic per measurement.
std::size_t IterationsFor(std::size_t m) {
  const std::size_t budget = g_smoke ? (1u << 18) : (1u << 23);
  return std::max<std::size_t>(1, budget / m);
}

// Keeps reduction results alive across the timing loop without a volatile
// in the hot path.
double g_sink = 0.0;

struct KernelTimings {
  double scalar_seconds = 0.0;
  double simd_seconds = 0.0;
};

// Times `body(table)` once per backend: the scalar reference table first,
// then whatever table dispatch resolved to.
KernelTimings TimeBothBackends(
    const std::function<void(const KernelTable&)>& body) {
  const KernelTable& scalar = kshape::simd::Kernels(Backend::kScalar);
  const KernelTable& active = kshape::simd::Active();
  KernelTimings t;
  t.scalar_seconds = TimeSeconds([&] { body(scalar); });
  t.simd_seconds = TimeSeconds([&] { body(active); });
  return t;
}

void BenchReductionKernels(std::size_t m) {
  kshape::common::Rng rng(11);
  const std::vector<double> x = RandomBuffer(m, &rng);
  const std::vector<double> y = RandomBuffer(m, &rng);
  const std::size_t iters = IterationsFor(m);

  const KernelTable& scalar = kshape::simd::Kernels(Backend::kScalar);
  const KernelTable& active = kshape::simd::Active();
  KSHAPE_CHECK_MSG(
      scalar.squared_ed(x.data(), y.data(), m) ==
          active.squared_ed(x.data(), y.data(), m),
      "squared_ed backends disagree bitwise");
  KSHAPE_CHECK_MSG(scalar.sum(x.data(), m) == active.sum(x.data(), m),
                   "sum backends disagree bitwise");

  const auto run_sum = [&](const KernelTable& kt) {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) acc += kt.sum(x.data(), m);
    g_sink += acc;
  };
  const auto run_sumsq = [&](const KernelTable& kt) {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) acc += kt.sum_squares(x.data(), m);
    g_sink += acc;
  };
  const auto run_meanvar = [&](const KernelTable& kt) {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      const kshape::simd::MeanVar mv = kt.mean_var(x.data(), m);
      acc += mv.mean + mv.variance;
    }
    g_sink += acc;
  };
  const auto run_dot = [&](const KernelTable& kt) {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      acc += kt.dot(x.data(), y.data(), m);
    }
    g_sink += acc;
  };
  const auto run_ed = [&](const KernelTable& kt) {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      acc += kt.squared_ed(x.data(), y.data(), m);
    }
    g_sink += acc;
  };
  const auto run_ed_abandon = [&](const KernelTable& kt) {
    // Threshold above the full sum: the kernel pays for every checkpoint but
    // never abandons, the worst case for the cadence overhead.
    const double threshold = std::numeric_limits<double>::infinity();
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      acc += kt.squared_ed_abandon(x.data(), y.data(), m, threshold);
    }
    g_sink += acc;
  };

  KernelTimings t = TimeBothBackends(run_sum);
  Record("sum", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_sumsq);
  Record("sum_squares", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_meanvar);
  Record("mean_var", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_dot);
  Record("dot", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_ed);
  Record("squared_ed", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_ed_abandon);
  Record("squared_ed_abandon", 0, m, t.scalar_seconds, t.simd_seconds);
}

void BenchEnvelopeAndPeakKernels(std::size_t m) {
  kshape::common::Rng rng(12);
  const std::vector<double> c = RandomBuffer(m, &rng);
  std::vector<double> lower = RandomBuffer(m, &rng, -1.0, 0.0);
  std::vector<double> upper(m);
  for (std::size_t i = 0; i < m; ++i) upper[i] = lower[i] + 0.8;
  const std::vector<double> a = RandomBuffer(2 * m, &rng);
  const std::vector<double> b = RandomBuffer(2 * m, &rng);
  std::vector<double> out(2 * m, 0.0);
  const std::size_t iters = IterationsFor(m);

  const auto run_lb = [&](const KernelTable& kt) {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      acc += kt.lb_keogh_squared(c.data(), lower.data(), upper.data(), m);
    }
    g_sink += acc;
  };
  const auto run_cmul = [&](const KernelTable& kt) {
    for (std::size_t i = 0; i < iters; ++i) {
      kt.complex_mul_conj(a.data(), b.data(), out.data(), m);
    }
    g_sink += out[0];
  };
  // SoA variant over split planes: the first halves of a/b are the real
  // planes, the second halves imaginary — same element count as the
  // interleaved kernel above, so the two rows are directly comparable.
  const auto run_cmul_soa = [&](const KernelTable& kt) {
    for (std::size_t i = 0; i < iters; ++i) {
      kt.complex_mul_conj_soa(a.data(), a.data() + m, b.data(), b.data() + m,
                              out.data(), out.data() + m, m);
    }
    g_sink += out[0];
  };
  const auto run_peak = [&](const KernelTable& kt) {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      const kshape::simd::Peak p = kt.peak_scan(c.data(), m);
      acc += p.value + static_cast<double>(p.index);
    }
    g_sink += acc;
  };

  KernelTimings t = TimeBothBackends(run_lb);
  Record("lb_keogh_squared", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_cmul);
  Record("complex_mul_conj", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_cmul_soa);
  Record("complex_mul_conj_soa", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_peak);
  Record("peak_scan", 0, m, t.scalar_seconds, t.simd_seconds);
}

void BenchElementwiseKernels(std::size_t m) {
  kshape::common::Rng rng(13);
  const std::vector<double> x = RandomBuffer(m, &rng);
  std::vector<double> y = RandomBuffer(m, &rng);
  const std::size_t iters = IterationsFor(m);

  const auto run_axpy = [&](const KernelTable& kt) {
    for (std::size_t i = 0; i < iters; ++i) {
      kt.axpy(1e-9, x.data(), y.data(), m);
    }
    g_sink += y[0];
  };
  const auto run_scale = [&](const KernelTable& kt) {
    // Alternating reciprocal factors keep the buffer magnitude stable over
    // millions of iterations.
    for (std::size_t i = 0; i < iters; ++i) {
      kt.scale(y.data(), (i & 1) ? 2.0 : 0.5, m);
    }
    g_sink += y[0];
  };
  const auto run_znorm = [&](const KernelTable& kt) {
    for (std::size_t i = 0; i < iters; ++i) {
      kt.apply_znorm(y.data(), m, 0.0, (i & 1) ? 2.0 : 0.5);
    }
    g_sink += y[0];
  };

  KernelTimings t = TimeBothBackends(run_axpy);
  Record("axpy", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_scale);
  Record("scale", 0, m, t.scalar_seconds, t.simd_seconds);
  t = TimeBothBackends(run_znorm);
  Record("apply_znorm", 0, m, t.scalar_seconds, t.simd_seconds);
}

void BenchDtwRowKernel(std::size_t m) {
  kshape::common::Rng rng(14);
  std::vector<double> prev = RandomBuffer(m + 1, &rng, 0.0, 4.0);
  prev[0] = std::numeric_limits<double>::infinity();
  const std::vector<double> y = RandomBuffer(m + 1, &rng);
  std::vector<double> cur(m, 0.0);
  const std::size_t iters = IterationsFor(m);

  const auto run = [&](const KernelTable& kt) {
    for (std::size_t i = 0; i < iters; ++i) {
      kt.dtw_row(prev.data(), y.data(), 0.25,
                 std::numeric_limits<double>::infinity(), cur.data(), m);
    }
    g_sink += cur[m - 1];
  };
  const KernelTimings t = TimeBothBackends(run);
  Record("dtw_row", 0, m, t.scalar_seconds, t.simd_seconds);
}

SeriesBatch MakeCorpus(SeriesStore* store, std::size_t n, std::size_t m,
                       uint64_t seed) {
  kshape::common::Rng rng(seed);
  store->Reserve(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    store->Append(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return SeriesBatch(*store);
}

// End-to-end workload 1: the full ED pairwise distance matrix, single
// thread, under the scalar backend and then the dispatched backend.
void BenchEdPairwiseEndToEnd(std::size_t n, std::size_t m) {
  using namespace kshape;
  SeriesStore store;
  const SeriesBatch batch = MakeCorpus(&store, n, m, 21);
  const distance::EuclideanDistance ed;
  common::SetThreadCount(1);

  const Backend original = simd::ActiveBackend();
  simd::SetBackendForTesting(Backend::kScalar);
  const linalg::Matrix reference = cluster::PairwiseDistanceMatrix(batch, ed);
  const double scalar_seconds =
      TimeSeconds([&] { cluster::PairwiseDistanceMatrix(batch, ed); });
  simd::SetBackendForTesting(original);
  const linalg::Matrix dispatched = cluster::PairwiseDistanceMatrix(batch, ed);
  const double simd_seconds =
      TimeSeconds([&] { cluster::PairwiseDistanceMatrix(batch, ed); });

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      KSHAPE_CHECK_MSG(reference(i, j) == dispatched(i, j),
                       "ED pairwise matrix differs across backends");
    }
  }
  Record("ed_pairwise_matrix", n, m, scalar_seconds, simd_seconds);
}

// End-to-end workload 2: SbdEngine::PairwiseFlat — spectrum products, peak
// scans, and norms all route through the kernel layer.
void BenchSbdPairwiseEndToEnd(std::size_t n, std::size_t m) {
  using namespace kshape;
  SeriesStore store;
  const SeriesBatch batch = MakeCorpus(&store, n, m, 22);
  common::SetThreadCount(1);

  const Backend original = simd::ActiveBackend();
  simd::SetBackendForTesting(Backend::kScalar);
  const core::SbdEngine engine(batch);
  std::vector<double> reference;
  engine.PairwiseFlat(&reference);
  std::vector<double> scratch;
  const double scalar_seconds =
      TimeSeconds([&] { engine.PairwiseFlat(&scratch); });
  simd::SetBackendForTesting(original);
  std::vector<double> dispatched;
  engine.PairwiseFlat(&dispatched);
  const double simd_seconds =
      TimeSeconds([&] { engine.PairwiseFlat(&scratch); });

  KSHAPE_CHECK_MSG(reference == dispatched,
                   "SBD pairwise flat differs across backends");
  Record("sbd_pairwise_flat", n, m, scalar_seconds, simd_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;
  g_smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  std::printf("simd_kernels: dispatched backend = %s (avx2 available: %s)\n",
              simd::ActiveBackendName(), simd::Avx2Available() ? "yes" : "no");

  harness::PrintSection(std::cout, "per-kernel throughput");
  for (const std::size_t m : kLengths) {
    BenchReductionKernels(m);
    BenchEnvelopeAndPeakKernels(m);
    BenchElementwiseKernels(m);
    BenchDtwRowKernel(m);
  }

  harness::PrintSection(std::cout, "end-to-end pipelines");
  const std::size_t scale = g_smoke ? 5 : 1;
  BenchEdPairwiseEndToEnd(400 / scale, 512);
  BenchSbdPairwiseEndToEnd(250 / scale, 512);

  std::ofstream json("BENCH_simd_kernels.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    json << "  " << g_records[i] << (i + 1 < g_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_simd_kernels.json (%zu records)\n",
              g_records.size());
  // Defeat whole-program DCE of the timing loops.
  std::printf("checksum %.3g\n", g_sink);
  return 0;
}
