// Full-complex vs half-spectrum transform pipelines, and the batched-SoA
// forward pool. Three sections:
//
//   1. forward transforms — fft::Spectrum (full complex) vs fft::RfftForward
//      (packed half spectrum) vs fft::BatchSpectra (packed, one amortized
//      plan, contiguous SoA pool);
//   2. product + inverse — the per-pair hot path of the spectrum cache:
//      fft::CrossCorrelationFromSpectra vs fft::CrossCorrelationFromRfft;
//   3. end-to-end — SbdEngine::PairwiseFlat with the full-complex cache vs
//      the half-spectrum cache (the PR acceptance workload,
//      "sbd_pairwise_flat").
//
// One BENCH JSON line per (workload, length):
//
//   BENCH {"bench":"rfft","workload":"sbd_pairwise_flat","n":250,"m":512,
//          "backend":"avx2","full_seconds":0.80,"half_seconds":0.45,
//          "speedup":1.78}
//
// "full" is always the PR 5 full-complex path, "half" the packed path (for
// the batched-forward row, the batch pool). Records are also written to
// BENCH_rfft.json (a JSON array) in the working directory for CI. Before
// each timing pair the two paths are cross-checked to the documented epsilon
// equivalence — the benchmark binary enforces the contract too, not just the
// test suite. The acceptance bar: >= 1.5x end-to-end on sbd_pairwise_flat at
// m >= 512.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/sbd_engine.h"
#include "data/generators.h"
#include "fft/fft.h"
#include "fft/rfft.h"
#include "harness/table.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

using kshape::fft::Complex;
using kshape::tseries::SeriesBatch;
using kshape::tseries::SeriesStore;

constexpr int kRepetitions = 5;
constexpr std::size_t kLengths[] = {128, 512, 2048};

bool g_smoke = false;
std::vector<std::string> g_records;
double g_sink = 0.0;

void Record(const char* workload, std::size_t n, std::size_t m,
            double full_seconds, double half_seconds) {
  const double speedup =
      half_seconds > 0.0 ? full_seconds / half_seconds : 0.0;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"rfft\",\"workload\":\"%s\",\"n\":%zu,\"m\":%zu,"
      "\"backend\":\"%s\",\"full_seconds\":%.6f,\"half_seconds\":%.6f,"
      "\"speedup\":%.3f}",
      workload, n, m, kshape::simd::ActiveBackendName(), full_seconds,
      half_seconds, speedup);
  std::printf("BENCH %s\n", buffer);
  g_records.emplace_back(buffer);
}

// Minimum of kRepetitions timings — same estimator as the simd_kernels and
// storage_layout benches.
double TimeSeconds(const std::function<void()>& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kRepetitions; ++rep) {
    kshape::common::Stopwatch timer;
    run();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Iterations per timing rep, budgeted by transform length like the kernel
// bench budgets by buffer length (transforms are O(m log m), so the per-rep
// work grows mildly with m; that is fine for a ratio benchmark).
std::size_t IterationsFor(std::size_t m) {
  const std::size_t budget = g_smoke ? (1u << 14) : (1u << 19);
  return std::max<std::size_t>(1, budget / m);
}

std::vector<double> RandomSeries(std::size_t m, kshape::common::Rng* rng) {
  std::vector<double> x(m);
  for (double& v : x) v = rng->Gaussian();
  return x;
}

SeriesBatch MakeCorpus(SeriesStore* store, std::size_t n, std::size_t m,
                       uint64_t seed) {
  kshape::common::Rng rng(seed);
  store->Reserve(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    store->Append(kshape::tseries::ZNormalized(
        kshape::data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return SeriesBatch(*store);
}

// Section 1: one forward transform per iteration, full vs packed vs pooled.
void BenchForward(std::size_t m) {
  using namespace kshape;
  common::Rng rng(61);
  const std::size_t fft_len = fft::NextPowerOfTwo(2 * m - 1);
  const std::size_t iters = IterationsFor(m);
  // A small rotating corpus so the transforms do not degenerate into one
  // cache-hot input.
  constexpr std::size_t kCorpus = 16;
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < kCorpus; ++i) {
    series.push_back(RandomSeries(m, &rng));
  }

  // Epsilon cross-check: packed bins must match the full spectrum.
  {
    const std::vector<Complex> full = fft::Spectrum(series[0], fft_len);
    const fft::RfftSpectrum half = fft::RfftForward(series[0], fft_len);
    for (std::size_t k = 0; k < half.bins(); ++k) {
      KSHAPE_CHECK_MSG(
          std::fabs(half.re[k] - full[k].real()) <= 1e-8 &&
              std::fabs(half.im[k] - full[k].imag()) <= 1e-8,
          "half-spectrum forward disagrees with full spectrum");
    }
  }

  const double full_seconds = TimeSeconds([&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      acc += fft::Spectrum(series[i % kCorpus], fft_len)[1].real();
    }
    g_sink += acc;
  });
  const double half_seconds = TimeSeconds([&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      acc += fft::RfftForward(series[i % kCorpus], fft_len).re[1];
    }
    g_sink += acc;
  });
  // The batched pool amortizes the plan lookup and reuses one allocation
  // across all slots; timed per `iters` transforms like the rows above.
  fft::BatchSpectra batch(kCorpus, fft_len);
  const double batch_seconds = TimeSeconds([&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      batch.Transform(i % kCorpus, series[i % kCorpus]);
      acc += batch.view(i % kCorpus).re[1];
    }
    g_sink += acc;
  });

  Record("forward_full_vs_half", 0, m, full_seconds, half_seconds);
  Record("forward_full_vs_batch", 0, m, full_seconds, batch_seconds);
}

// Section 2: the per-pair hot path — multiply-conjugate + one inverse.
void BenchProductInverse(std::size_t m) {
  using namespace kshape;
  common::Rng rng(62);
  const std::size_t fft_len = fft::NextPowerOfTwo(2 * m - 1);
  const std::size_t iters = IterationsFor(m);
  const std::vector<double> x = RandomSeries(m, &rng);
  const std::vector<double> y = RandomSeries(m, &rng);

  const std::vector<Complex> fx = fft::Spectrum(x, fft_len);
  const std::vector<Complex> fy = fft::Spectrum(y, fft_len);
  const fft::RfftSpectrum hx = fft::RfftForward(x, fft_len);
  const fft::RfftSpectrum hy = fft::RfftForward(y, fft_len);
  const fft::RfftPlan& plan = fft::GetRfftPlan(fft_len);

  // Epsilon cross-check: the two cached paths agree lag by lag.
  std::vector<double> full_cc, half_cc;
  fft::CrossCorrelationFromSpectra(fx, fy, m, &full_cc);
  fft::CrossCorrelationFromRfft(plan, hx.view(), hy.view(), m, &half_cc);
  KSHAPE_CHECK(full_cc.size() == half_cc.size());
  for (std::size_t i = 0; i < full_cc.size(); ++i) {
    KSHAPE_CHECK_MSG(std::fabs(full_cc[i] - half_cc[i]) <= 1e-7,
                     "half-spectrum cross-correlation disagrees with full");
  }

  const double full_seconds = TimeSeconds([&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      fft::CrossCorrelationFromSpectra(fx, fy, m, &full_cc);
      acc += full_cc[m - 1];
    }
    g_sink += acc;
  });
  const double half_seconds = TimeSeconds([&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      fft::CrossCorrelationFromRfft(plan, hx.view(), hy.view(), m, &half_cc);
      acc += half_cc[m - 1];
    }
    g_sink += acc;
  });

  Record("product_inverse", 0, m, full_seconds, half_seconds);
}

// Section 3: the acceptance workload — SbdEngine::PairwiseFlat, full-complex
// cache vs half-spectrum cache, single thread (the same configuration as the
// simd_kernels end-to-end row this PR is measured against).
void BenchSbdPairwiseEndToEnd(std::size_t n, std::size_t m) {
  using namespace kshape;
  SeriesStore store;
  const SeriesBatch batch = MakeCorpus(&store, n, m, 63);
  common::SetThreadCount(1);

  const core::SbdEngine full_engine(batch, core::CrossCorrelationImpl::kFft,
                                    /*use_half_spectrum=*/false);
  const core::SbdEngine half_engine(batch, core::CrossCorrelationImpl::kFft,
                                    /*use_half_spectrum=*/true);
  KSHAPE_CHECK(!full_engine.half_spectrum());
  KSHAPE_CHECK(half_engine.half_spectrum());

  std::vector<double> full_flat, half_flat;
  full_engine.PairwiseFlat(&full_flat);
  half_engine.PairwiseFlat(&half_flat);
  KSHAPE_CHECK(full_flat.size() == half_flat.size());
  for (std::size_t i = 0; i < full_flat.size(); ++i) {
    KSHAPE_CHECK_MSG(std::fabs(full_flat[i] - half_flat[i]) <= 1e-8,
                     "half-spectrum pairwise SBD disagrees with full");
  }

  std::vector<double> scratch;
  const double full_seconds =
      TimeSeconds([&] { full_engine.PairwiseFlat(&scratch); });
  const double half_seconds =
      TimeSeconds([&] { half_engine.PairwiseFlat(&scratch); });
  Record("sbd_pairwise_flat", n, m, full_seconds, half_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;
  g_smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  std::printf("rfft_batch: dispatched backend = %s (avx2 available: %s)\n",
              simd::ActiveBackendName(), simd::Avx2Available() ? "yes" : "no");

  harness::PrintSection(std::cout, "forward transforms (full vs half vs batch)");
  for (const std::size_t m : kLengths) BenchForward(m);

  harness::PrintSection(std::cout, "product + inverse (per-pair hot path)");
  for (const std::size_t m : kLengths) BenchProductInverse(m);

  harness::PrintSection(std::cout, "end-to-end SBD pairwise (acceptance)");
  const std::size_t scale = g_smoke ? 5 : 1;
  BenchSbdPairwiseEndToEnd(250 / scale, 512);

  std::ofstream json("BENCH_rfft.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    json << "  " << g_records[i] << (i + 1 < g_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_rfft.json (%zu records)\n", g_records.size());
  // Defeat whole-program DCE of the timing loops.
  std::printf("checksum %.3g\n", g_sink);
  return 0;
}
