// Extension of Table 2 beyond the paper's roster: 1-NN accuracy of the
// additional elastic and complexity-invariant measures the paper's related
// work discusses (§2.3 and references [11, 12, 55, 75, 7]) — ERP, EDR, MSM,
// and CID — against the same ED baseline and alongside SBD and cDTW5. The
// paper relies on Ding/Wang et al.'s finding that cDTW is not dominated by
// these measures; this bench lets the claim be checked on the synthetic
// archive.

#include <iostream>

#include "classify/nearest_neighbor.h"
#include "common/stopwatch.h"
#include "core/sbd.h"
#include "data/archive.h"
#include "distance/dtw.h"
#include "distance/elastic.h"
#include "distance/euclidean.h"
#include "harness/experiments.h"
#include "harness/table.h"

int main() {
  using namespace kshape;

  const auto archive = data::MakeSyntheticArchive();

  const distance::EuclideanDistance ed;
  const dtw::DtwMeasure cdtw5 = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");
  const core::SbdDistance sbd;
  const distance::ErpMeasure erp;
  const distance::EdrMeasure edr;   // epsilon = 0.25 on z-normalized data.
  const distance::MsmMeasure msm;   // cost = 0.5.
  const distance::CidMeasure cid;

  const std::vector<const distance::DistanceMeasure*> measures = {
      &ed, &cdtw5, &sbd, &erp, &edr, &msm, &cid};

  std::vector<harness::MethodScores> scores(measures.size());
  for (std::size_t j = 0; j < measures.size(); ++j) {
    scores[j].name = measures[j]->Name();
  }

  for (const auto& split : archive) {
    for (std::size_t j = 0; j < measures.size(); ++j) {
      common::Stopwatch timer;
      scores[j].scores.push_back(
          classify::OneNnAccuracy(split.train, split.test, *measures[j]));
      scores[j].total_seconds += timer.ElapsedSeconds();
    }
  }

  harness::PrintSection(std::cout,
                        "Extended Table 2: elastic and complexity-invariant "
                        "measures vs ED (1-NN accuracy)");
  harness::PrintComparisonTable(
      scores[0],
      {scores[1], scores[2], scores[3], scores[4], scores[5], scores[6]},
      "Accuracy", 0.01, std::cout);

  harness::PrintSection(std::cout,
                        "Average ranks (all seven measures, Friedman + "
                        "Nemenyi)");
  harness::PrintAverageRanks(scores, std::cout);
  std::cout << "\n(The paper's premise, via Ding et al. [19] and Wang et "
               "al. [81]: none of the\nalternative elastic measures "
               "dominates cDTW; SBD matches them at a fraction\nof the "
               "cost.)\n";
  return 0;
}
