// Fit-once / predict-many throughput of the FittedModel serving path
// (src/model/fitted_model.h): one k-Shape fit produces a model, the model
// round-trips through its .kmodel binary format, and fresh batches score
// against the frozen centroids via model::Predict (batched) and
// model::OnlineScorer (series-at-a-time ingestion).
//
// Correctness is asserted, not just reported: the labels (and distances) of
// the saved->loaded model must match the in-memory model bit for bit on
// every benched config — the serialization contract of the fit/predict
// split. The bench aborts on divergence.
//
// One BENCH JSON line per workload:
//
//   BENCH {"bench":"model_predict","workload":"predict_batch","n_fit":240,
//          "m":128,"k":8,"batch":10000,"backend":"avx2","fit_seconds":0.21,
//          "predict_seconds":0.84,"series_per_second":11904.8,
//          "roundtrip_match":true}
//
// Records also land in BENCH_model_predict.json (a JSON array) for CI.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "harness/table.h"
#include "model/fitted_model.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

using kshape::tseries::SeriesBatch;
using kshape::tseries::SeriesStore;

constexpr int kClusters = 8;
constexpr double kNoiseSigma = 0.5;

bool g_smoke = false;
std::vector<std::string> g_records;

void Record(const char* workload, std::size_t n_fit, std::size_t m,
            std::size_t batch, double fit_seconds, double predict_seconds,
            bool roundtrip_match) {
  const double rate = predict_seconds > 0.0
                          ? static_cast<double>(batch) / predict_seconds
                          : 0.0;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"model_predict\",\"workload\":\"%s\",\"n_fit\":%zu,"
      "\"m\":%zu,\"k\":%d,\"batch\":%zu,\"backend\":\"%s\","
      "\"fit_seconds\":%.6f,\"predict_seconds\":%.6f,"
      "\"series_per_second\":%.1f,\"roundtrip_match\":%s}",
      workload, n_fit, m, kClusters, batch,
      kshape::simd::ActiveBackendName(), fit_seconds, predict_seconds, rate,
      roundtrip_match ? "true" : "false");
  std::printf("BENCH %s\n", buffer);
  g_records.emplace_back(buffer);
}

double TimeSeconds(int reps, const std::function<void()>& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    kshape::common::Stopwatch timer;
    run();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Noisy sine at an odd class frequency (same family as the pruning bench:
// spectrally separated classes that need SBD alignment).
kshape::tseries::Series JitterSine(int klass, std::size_t m,
                                   kshape::common::Rng* rng) {
  const double freq = static_cast<double>(2 * klass + 1);
  const double phase = rng->Uniform() * 0.15 * M_PI;
  kshape::tseries::Series s(m);
  for (std::size_t t = 0; t < m; ++t) {
    const double x = 2.0 * M_PI * freq * static_cast<double>(t) /
                         static_cast<double>(m) +
                     phase;
    s[t] = std::sin(x) + kNoiseSigma * rng->Gaussian();
  }
  return s;
}

SeriesBatch MakeCorpus(SeriesStore* store, std::size_t n, std::size_t m,
                       uint64_t seed) {
  kshape::common::Rng rng(seed);
  store->Reserve(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    store->Append(kshape::tseries::ZNormalized(
        JitterSine(static_cast<int>(i % kClusters), m, &rng)));
  }
  return SeriesBatch(*store);
}

void BenchConfig(std::size_t m, std::size_t batch_size) {
  using namespace kshape;
  const std::size_t n_fit = g_smoke ? 80 : 240;

  SeriesStore fit_store;
  const SeriesBatch fit_batch = MakeCorpus(&fit_store, n_fit, m, m * 7 + 1);
  SeriesStore score_store;
  const SeriesBatch score_batch =
      MakeCorpus(&score_store, batch_size, m, m * 13 + 5);

  core::KShapeOptions options;
  options.init = core::KShapeInit::kPlusPlusSeeding;
  const core::KShape kshape(options);
  const double fit_seconds = TimeSeconds(1, [&] {
    common::Rng rng(11);
    kshape.Cluster(fit_batch, kClusters, &rng);
  });
  common::Rng rng(11);
  const cluster::ClusteringResult fitted =
      kshape.Cluster(fit_batch, kClusters, &rng);
  KSHAPE_CHECK(!fitted.model.empty());

  // Serialization contract: saved -> loaded predicts bit-identically to the
  // in-memory model.
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "bench_model_predict.kmodel";
  KSHAPE_CHECK(fitted.model.Save(path.string()).ok());
  common::StatusOr<model::FittedModel> loaded =
      model::FittedModel::Load(path.string());
  KSHAPE_CHECK_MSG(loaded.ok(), "model round-trip load failed");
  std::filesystem::remove(path);

  const model::PredictResult in_memory =
      model::Predict(fitted.model, score_batch);
  const model::PredictResult from_disk =
      model::Predict(loaded.value(), score_batch);
  const bool roundtrip_match = in_memory.labels == from_disk.labels &&
                               in_memory.distances == from_disk.distances;
  KSHAPE_CHECK_MSG(roundtrip_match,
                   "saved->loaded Predict diverged from in-memory Predict");

  const int reps = g_smoke ? 1 : 3;
  const double predict_seconds = TimeSeconds(reps, [&] {
    model::Predict(fitted.model, score_batch);
  });
  Record("predict_batch", n_fit, m, batch_size, fit_seconds, predict_seconds,
         roundtrip_match);

  // Series-at-a-time serving: the OnlineScorer ingestion path. Labels must
  // agree with the batched scan (same queries, same engine configuration).
  const double online_seconds = TimeSeconds(reps, [&] {
    model::OnlineScorer scorer(&fitted.model);
    for (std::size_t i = 0; i < score_batch.size(); ++i) {
      scorer.Ingest(score_batch[i]);
    }
  });
  model::OnlineScorer scorer(&fitted.model);
  bool online_match = true;
  for (std::size_t i = 0; i < score_batch.size(); ++i) {
    const model::OnlineScorer::Ingested got = scorer.Ingest(score_batch[i]);
    online_match = online_match && got.label == in_memory.labels[i];
  }
  KSHAPE_CHECK_MSG(online_match,
                   "OnlineScorer labels diverged from batched Predict");
  Record("online_ingest", n_fit, m, batch_size, fit_seconds, online_seconds,
         online_match);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;
  g_smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  std::printf(
      "model_predict: dispatched backend = %s (avx2 available: %s)\n",
      simd::ActiveBackendName(), simd::Avx2Available() ? "yes" : "no");

  harness::PrintSection(std::cout,
                        "FittedModel serving: fit once, predict many");
  const std::vector<std::size_t> lengths =
      g_smoke ? std::vector<std::size_t>{128}
              : std::vector<std::size_t>{128, 512};
  const std::vector<std::size_t> batches =
      g_smoke ? std::vector<std::size_t>{500}
              : std::vector<std::size_t>{1000, 10000};
  for (const std::size_t m : lengths) {
    for (const std::size_t batch : batches) {
      BenchConfig(m, batch);
    }
  }

  std::ofstream json("BENCH_model_predict.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    json << "  " << g_records[i] << (i + 1 < g_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_model_predict.json (%zu records)\n",
              g_records.size());
  return 0;
}
