// Microbenchmarks of the library's computational kernels, backing the
// complexity claims of §3.1 and §3.3 of the paper:
//   - FFT cost vs transform size (O(m log m), power-of-two vs Bluestein);
//   - SBD vs its ablations (padded FFT vs exact-length FFT vs naive O(m^2)),
//     the runtime column of Table 2;
//   - ED vs cDTW vs DTW distance kernels;
//   - shape extraction via power iteration vs full eigendecomposition.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "core/sbd.h"
#include "core/shape_extraction.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "fft/fft.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

Series RandomSeries(std::size_t m, kshape::common::Rng* rng) {
  Series x(m);
  for (double& v : x) v = rng->Gaussian();
  return kshape::tseries::ZNormalized(x);
}

void BM_FftPowerOfTwo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(1);
  std::vector<kshape::fft::Complex> data(n);
  for (auto& v : data) v = {rng.Gaussian(), rng.Gaussian()};
  for (auto _ : state) {
    std::vector<kshape::fft::Complex> copy = data;
    kshape::fft::Forward(&copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPowerOfTwo)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_FftBluestein(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(2);
  std::vector<kshape::fft::Complex> data(n);
  for (auto& v : data) v = {rng.Gaussian(), rng.Gaussian()};
  for (auto _ : state) {
    std::vector<kshape::fft::Complex> copy = data;
    kshape::fft::Forward(&copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_FftBluestein)->Arg(63)->Arg(255)->Arg(1023)->Arg(4095);

template <kshape::core::CrossCorrelationImpl impl>
void BM_Sbd(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(3);
  const Series x = RandomSeries(m, &rng);
  const Series y = RandomSeries(m, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kshape::core::Sbd(x, y, impl).distance);
  }
}
BENCHMARK(BM_Sbd<kshape::core::CrossCorrelationImpl::kFft>)
    ->Name("BM_Sbd_Fft")->Arg(128)->Arg(512)->Arg(1024);
BENCHMARK(BM_Sbd<kshape::core::CrossCorrelationImpl::kFftNoPow2>)
    ->Name("BM_Sbd_NoPow2")->Arg(128)->Arg(512)->Arg(1024);
BENCHMARK(BM_Sbd<kshape::core::CrossCorrelationImpl::kNaive>)
    ->Name("BM_Sbd_NoFFT")->Arg(128)->Arg(512)->Arg(1024);

void BM_Euclidean(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(4);
  const Series x = RandomSeries(m, &rng);
  const Series y = RandomSeries(m, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kshape::distance::EuclideanDistanceValue(x, y));
  }
}
BENCHMARK(BM_Euclidean)->Arg(128)->Arg(512)->Arg(1024);

void BM_DtwFull(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(5);
  const Series x = RandomSeries(m, &rng);
  const Series y = RandomSeries(m, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kshape::dtw::DtwDistance(x, y));
  }
}
BENCHMARK(BM_DtwFull)->Arg(128)->Arg(512);

void BM_CdtwFivePercent(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(6);
  const Series x = RandomSeries(m, &rng);
  const Series y = RandomSeries(m, &rng);
  const int window = kshape::dtw::WindowFromFraction(0.05, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kshape::dtw::ConstrainedDtwDistance(x, y, window));
  }
}
BENCHMARK(BM_CdtwFivePercent)->Arg(128)->Arg(512)->Arg(1024);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(7);
  const Series x = RandomSeries(m, &rng);
  const Series y = RandomSeries(m, &rng);
  Series lower, upper;
  kshape::dtw::LowerUpperEnvelope(x, kshape::dtw::WindowFromFraction(0.05, m),
                                  &lower, &upper);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kshape::dtw::LbKeogh(y, lower, upper));
  }
}
BENCHMARK(BM_LbKeogh)->Arg(128)->Arg(512)->Arg(1024);

// SIMD kernel layer: the same kernel driven through the scalar reference
// table and the runtime-dispatched table (bench/simd_kernels.cc has the full
// per-kernel sweep with JSON output; these entries put the headline kernels
// alongside the distance benchmarks above for quick comparison runs).
template <kshape::simd::Backend kBackend>
void BM_SimdSquaredEd(benchmark::State& state) {
  if (kBackend == kshape::simd::Backend::kAvx2 &&
      !kshape::simd::Avx2Available()) {
    state.SkipWithError("AVX2 backend unavailable");
    return;
  }
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(9);
  const Series x = RandomSeries(m, &rng);
  const Series y = RandomSeries(m, &rng);
  const kshape::simd::KernelTable& kt = kshape::simd::Kernels(kBackend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.squared_ed(x.data(), y.data(), m));
  }
}
BENCHMARK(BM_SimdSquaredEd<kshape::simd::Backend::kScalar>)
    ->Name("BM_SimdSquaredEd_Scalar")->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK(BM_SimdSquaredEd<kshape::simd::Backend::kAvx2>)
    ->Name("BM_SimdSquaredEd_Avx2")->Arg(128)->Arg(512)->Arg(2048);

template <kshape::simd::Backend kBackend>
void BM_SimdMeanVar(benchmark::State& state) {
  if (kBackend == kshape::simd::Backend::kAvx2 &&
      !kshape::simd::Avx2Available()) {
    state.SkipWithError("AVX2 backend unavailable");
    return;
  }
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(10);
  const Series x = RandomSeries(m, &rng);
  const kshape::simd::KernelTable& kt = kshape::simd::Kernels(kBackend);
  for (auto _ : state) {
    const kshape::simd::MeanVar mv = kt.mean_var(x.data(), m);
    benchmark::DoNotOptimize(mv.mean + mv.variance);
  }
}
BENCHMARK(BM_SimdMeanVar<kshape::simd::Backend::kScalar>)
    ->Name("BM_SimdMeanVar_Scalar")->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK(BM_SimdMeanVar<kshape::simd::Backend::kAvx2>)
    ->Name("BM_SimdMeanVar_Avx2")->Arg(128)->Arg(512)->Arg(2048);

template <kshape::simd::Backend kBackend>
void BM_SimdPeakScan(benchmark::State& state) {
  if (kBackend == kshape::simd::Backend::kAvx2 &&
      !kshape::simd::Avx2Available()) {
    state.SkipWithError("AVX2 backend unavailable");
    return;
  }
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(11);
  const Series x = RandomSeries(m, &rng);
  const kshape::simd::KernelTable& kt = kshape::simd::Kernels(kBackend);
  for (auto _ : state) {
    const kshape::simd::Peak p = kt.peak_scan(x.data(), m);
    benchmark::DoNotOptimize(p.value + static_cast<double>(p.index));
  }
}
BENCHMARK(BM_SimdPeakScan<kshape::simd::Backend::kScalar>)
    ->Name("BM_SimdPeakScan_Scalar")->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK(BM_SimdPeakScan<kshape::simd::Backend::kAvx2>)
    ->Name("BM_SimdPeakScan_Avx2")->Arg(128)->Arg(512)->Arg(2048);

template <bool kUsePowerIteration>
void BM_ShapeExtraction(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  kshape::common::Rng rng(8);
  std::vector<Series> members;
  for (int i = 0; i < 20; ++i) members.push_back(RandomSeries(m, &rng));
  const Series reference = RandomSeries(m, &rng);
  kshape::core::ShapeExtractionOptions options;
  options.use_power_iteration = kUsePowerIteration;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kshape::core::ExtractShape(members, reference, &rng, options));
  }
}
BENCHMARK(BM_ShapeExtraction<true>)
    ->Name("BM_ShapeExtraction_PowerIteration")->Arg(128)->Arg(256);
BENCHMARK(BM_ShapeExtraction<false>)
    ->Name("BM_ShapeExtraction_FullEigen")->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
