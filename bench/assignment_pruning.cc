// Exact vs bound-driven-pruned k-Shape assignment (KShapeOptions::
// use_pruning): the end-to-end Cluster() workload across corpus sizes and
// lengths, plus the per-iteration share of the n*k candidate pairs the
// bounds skipped. The corpus is k = 24 classes of noisy sines at spaced
// odd frequencies with a *bounded* phase jitter (<= 0.15 pi), so clusters
// are real, need SBD alignment, and take several refinement iterations —
// the regime the Hamerly-style bounds are built for.
//
// The jitter bound matters: with uniformly random phase (MakeShiftedSine)
// a class spans the degenerate sin/cos eigenpair, the first refinement —
// which runs unaligned because the initial reference is the zero series —
// stalls power iteration on a near-tied top eigenspace, and every cluster
// pays the O(m^3) SymmetricEigen fallback. That fixed cost is identical
// in the exact and pruned runs, so the bench would be measuring the
// eigensolver, not the assignment path it exists to measure.
//
// One BENCH JSON line per (n, m):
//
//   BENCH {"bench":"pruning","workload":"kshape_cluster","n":1000,"m":512,
//          "k":24,"backend":"avx2","exact_seconds":1.24,"pruned_seconds":0.74,
//          "speedup":1.69,"iterations":4,"skipped_pct_after_iter2":65.7,
//          "labels_match":true}
//
// Records also land in BENCH_pruning.json (a JSON array) for CI. Label
// equality at the default margin is asserted, not just reported: the bench
// aborts if the pruned run diverges from the exact run on any config. The
// acceptance bar: >= 1.5x end-to-end at n = 1000, m = 512 with >= 50% of
// candidate pairs skipped after iteration 2.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "harness/table.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

using kshape::tseries::SeriesBatch;
using kshape::tseries::SeriesStore;

constexpr int kClusters = 24;
constexpr double kNoiseSigma = 0.5;
constexpr double kPhaseJitter = 0.15 * M_PI;

bool g_smoke = false;
std::vector<std::string> g_records;

void Record(std::size_t n, std::size_t m, double exact_seconds,
            double pruned_seconds, int iterations,
            double skipped_pct_after_iter2, bool labels_match) {
  const double speedup =
      pruned_seconds > 0.0 ? exact_seconds / pruned_seconds : 0.0;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"pruning\",\"workload\":\"kshape_cluster\",\"n\":%zu,"
      "\"m\":%zu,\"k\":%d,\"backend\":\"%s\",\"exact_seconds\":%.6f,"
      "\"pruned_seconds\":%.6f,\"speedup\":%.3f,\"iterations\":%d,"
      "\"skipped_pct_after_iter2\":%.1f,\"labels_match\":%s}",
      n, m, kClusters, kshape::simd::ActiveBackendName(), exact_seconds,
      pruned_seconds, speedup, iterations, skipped_pct_after_iter2,
      labels_match ? "true" : "false");
  std::printf("BENCH %s\n", buffer);
  g_records.emplace_back(buffer);
}

// Minimum of repetitions — the same estimator as the other benches; Cluster
// is deterministic for a fixed seed, so repetitions only shed scheduling
// noise. The big configs get fewer reps to keep the full run bounded.
double TimeSeconds(int reps, const std::function<void()>& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    kshape::common::Stopwatch timer;
    run();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Noisy sine at an odd class frequency (2c+1 cycles keeps neighbouring
// classes spectrally separated) with phase jitter bounded by kPhaseJitter —
// see the header comment for why the jitter must stay well below pi.
kshape::tseries::Series JitterSine(int klass, std::size_t m,
                                   kshape::common::Rng* rng) {
  const double freq = static_cast<double>(2 * klass + 1);
  const double phase = rng->Uniform() * kPhaseJitter;
  kshape::tseries::Series s(m);
  for (std::size_t t = 0; t < m; ++t) {
    const double x = 2.0 * M_PI * freq * static_cast<double>(t) /
                         static_cast<double>(m) +
                     phase;
    s[t] = std::sin(x) + kNoiseSigma * rng->Gaussian();
  }
  return s;
}

SeriesBatch MakeCorpus(SeriesStore* store, std::size_t n, std::size_t m,
                       uint64_t seed) {
  kshape::common::Rng rng(seed);
  store->Reserve(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    store->Append(kshape::tseries::ZNormalized(
        JitterSine(static_cast<int>(i % kClusters), m, &rng)));
  }
  return SeriesBatch(*store);
}

void BenchConfig(std::size_t n, std::size_t m) {
  using namespace kshape;
  SeriesStore store;
  const SeriesBatch batch = MakeCorpus(&store, n, m, n * 31 + m);

  core::KShapeOptions pruned_options;
  pruned_options.init = core::KShapeInit::kPlusPlusSeeding;
  core::KShapeOptions exact_options = pruned_options;
  exact_options.use_pruning = false;
  const core::KShape pruned_kshape(pruned_options);
  const core::KShape exact_kshape(exact_options);
  const uint64_t seed = 97;

  // Correctness first: the pruned run must land on the exact labels at the
  // default margin on every benched config.
  common::Rng rng_p(seed);
  const cluster::ClusteringResult pruned =
      pruned_kshape.Cluster(batch, kClusters, &rng_p);
  common::Rng rng_e(seed);
  const cluster::ClusteringResult exact =
      exact_kshape.Cluster(batch, kClusters, &rng_e);
  const bool labels_match = pruned.assignments == exact.assignments &&
                            pruned.iterations == exact.iterations;
  KSHAPE_CHECK_MSG(labels_match,
                   "pruned k-Shape diverged from the exact scan");

  // Per-iteration share of candidate pairs skipped by either layer.
  const double pairs =
      static_cast<double>(n) * static_cast<double>(kClusters);
  double skipped_after_iter2 = 0.0;
  int tail_iters = 0;
  std::printf("n=%zu m=%zu: per-iteration %% of n*k pairs skipped:", n, m);
  for (std::size_t it = 0; it < pruned.assignment_stats.size(); ++it) {
    const cluster::AssignmentIterationStats& s = pruned.assignment_stats[it];
    const double pct =
        100.0 *
        static_cast<double>(s.pruned_bounds + s.abandoned_partial) / pairs;
    std::printf(" %.0f", pct);
    if (it >= 2) {
      skipped_after_iter2 += pct;
      ++tail_iters;
    }
  }
  std::printf("\n");
  if (tail_iters > 0) skipped_after_iter2 /= tail_iters;

  const int reps = g_smoke ? 1 : (n >= 5000 ? 1 : 3);
  const double exact_seconds = TimeSeconds(reps, [&] {
    common::Rng rng(seed);
    exact_kshape.Cluster(batch, kClusters, &rng);
  });
  const double pruned_seconds = TimeSeconds(reps, [&] {
    common::Rng rng(seed);
    pruned_kshape.Cluster(batch, kClusters, &rng);
  });

  Record(n, m, exact_seconds, pruned_seconds, pruned.iterations,
         skipped_after_iter2, labels_match);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;
  g_smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  std::printf(
      "assignment_pruning: dispatched backend = %s (avx2 available: %s)\n",
      simd::ActiveBackendName(), simd::Avx2Available() ? "yes" : "no");

  harness::PrintSection(std::cout,
                        "k-Shape end-to-end: exact vs bound-driven pruned "
                        "assignment");
  const std::vector<std::size_t> sizes =
      g_smoke ? std::vector<std::size_t>{200}
              : std::vector<std::size_t>{200, 1000, 5000};
  const std::vector<std::size_t> lengths = g_smoke
                                               ? std::vector<std::size_t>{128}
                                               : std::vector<std::size_t>{
                                                     128, 512};
  for (const std::size_t n : sizes) {
    for (const std::size_t m : lengths) {
      BenchConfig(n, m);
    }
  }

  std::ofstream json("BENCH_pruning.json");
  json << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    json << "  " << g_records[i] << (i + 1 < g_records.size() ? ",\n" : "\n");
  }
  json << "]\n";
  json.close();
  std::printf("wrote BENCH_pruning.json (%zu records)\n", g_records.size());
  return 0;
}
