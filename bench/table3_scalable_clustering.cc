// Reproduces Table 3 of the paper: Rand index of the scalable k-means
// variants against the k-AVG+ED baseline, with runtime factors. Also prints
// the data behind Figure 7 (k-Shape vs KSC and k-Shape vs k-DBA scatter) and
// Figure 8 (average ranks of the k-means variants, Friedman + Nemenyi).
//
// Protocol (§4): clustering runs on the fused train+test split; k is the
// number of classes; partitional methods are averaged over runs with
// different random initializations (10 in the paper; configurable here via
// KSHAPE_RUNS to trade fidelity for wall time on slow machines).

#include <cstdlib>
#include <iostream>

#include "cluster/averaging.h"
#include "cluster/dba.h"
#include "cluster/kmeans.h"
#include "cluster/ksc.h"
#include "common/stopwatch.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/archive.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "harness/experiments.h"
#include "harness/table.h"

int main() {
  using namespace kshape;

  int runs = 10;
  if (const char* env = std::getenv("KSHAPE_RUNS")) {
    runs = std::max(1, std::atoi(env));
  }

  const auto archive = data::MakeSyntheticArchive();
  std::vector<std::string> dataset_names;
  for (const auto& split : archive) dataset_names.push_back(split.name());

  // Method roster (Table 3).
  const distance::EuclideanDistance ed;
  const core::SbdDistance sbd;
  const dtw::DtwMeasure dtw_full = dtw::DtwMeasure::Unconstrained();
  const cluster::ArithmeticMeanAveraging mean_avg;
  const cluster::DbaAveraging dba_avg;

  const cluster::KMeans k_avg_ed(&ed, &mean_avg, "k-AVG+ED");
  const cluster::KMeans k_avg_sbd(&sbd, &mean_avg, "k-AVG+SBD");
  const cluster::KMeans k_avg_dtw(&dtw_full, &mean_avg, "k-AVG+DTW");
  const cluster::KMeans k_dba(&dtw_full, &dba_avg, "k-DBA");
  const cluster::Ksc ksc;
  const core::KShape kshape;
  core::KShapeOptions dtw_options;
  dtw_options.assignment_distance = &dtw_full;
  const core::KShape kshape_dtw(dtw_options);

  const std::vector<const cluster::ClusteringAlgorithm*> methods = {
      &k_avg_ed, &k_avg_sbd, &k_avg_dtw, &ksc, &k_dba, &kshape_dtw, &kshape};

  std::vector<harness::MethodScores> scores(methods.size());
  for (std::size_t j = 0; j < methods.size(); ++j) {
    scores[j].name = methods[j]->Name();
  }

  uint64_t seed = 20150601;
  for (const auto& split : archive) {
    const tseries::Dataset fused = split.Fused();
    const int k = fused.NumClasses();
    for (std::size_t j = 0; j < methods.size(); ++j) {
      common::Stopwatch timer;
      scores[j].scores.push_back(harness::AverageRandIndex(
          *methods[j], fused.batch(), fused.labels(), k, runs, seed));
      scores[j].total_seconds += timer.ElapsedSeconds();
    }
    ++seed;
  }

  harness::PrintSection(
      std::cout, "Table 3: k-means variants vs k-AVG+ED (Rand index, " +
                     std::to_string(runs) + " random restarts per dataset)");
  harness::PrintComparisonTable(scores[0],
                       {scores[1], scores[2], scores[3], scores[4], scores[5],
                        scores[6]},
                       "Rand Index", 0.01, std::cout);

  harness::PrintSection(std::cout,
                        "Figure 7a: per-dataset Rand index, k-Shape vs KSC");
  harness::PrintScatterPairs(scores[3], scores[6], dataset_names, std::cout);

  harness::PrintSection(std::cout,
                        "Figure 7b: per-dataset Rand index, k-Shape vs k-DBA");
  harness::PrintScatterPairs(scores[4], scores[6], dataset_names, std::cout);

  harness::PrintSection(
      std::cout,
      "Figure 8: average ranks of k-means variants (Friedman + Nemenyi)");
  harness::PrintAverageRanks({scores[6], scores[0], scores[3], scores[4]}, std::cout);
  return 0;
}
